package tt

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// cacheCounters attaches a fresh registry and returns the two cross-batch
// cache counters so tests can assert per-step deltas.
func cacheCounters(tbl *Table) (hits, misses *obs.Counter) {
	reg := obs.NewRegistry()
	tbl.AttachMetrics(reg)
	return reg.Counter("tt_prefix_cache_hits"), reg.Counter("tt_prefix_cache_misses")
}

// idxFor builds a flat row index from TT coordinates under testShape
// (RowFactors {4,5,5}): idx = (i1*5+i2)*5+i3.
func idxFor(i1, i2, i3 int) int { return (i1*5+i2)*5 + i3 }

// TestPrefixCacheHitsAcrossBatches checks that the second Lookup of the
// same batch is served entirely from the persistent cache.
func TestPrefixCacheHitsAcrossBatches(t *testing.T) {
	tbl := newTestTable(t, 500)
	hits, misses := cacheCounters(tbl)

	indices := []int{idxFor(0, 0, 0), idxFor(1, 1, 0), idxFor(2, 2, 1)}
	offsets := []int{0, 1, 2}
	tbl.Lookup(indices, offsets)
	if h, m := hits.Value(), misses.Value(); h != 0 || m != 3 {
		t.Fatalf("cold batch: hits=%d misses=%d, want 0/3", h, m)
	}
	tbl.Lookup(indices, offsets)
	if h, m := hits.Value(), misses.Value(); h != 3 || m != 3 {
		t.Fatalf("warm batch: hits=%d misses=%d, want 3/3", h, m)
	}
}

// TestPrefixCacheFusedUpdateEvictsExactlyTouched is the ISSUE's invalidation
// property: a fused core update must evict exactly the prefixes whose source
// slices it wrote, and leave every other cached product valid.
func TestPrefixCacheFusedUpdateEvictsExactlyTouched(t *testing.T) {
	tbl := newTestTable(t, 501)
	hits, misses := cacheCounters(tbl)

	// Three prefixes with pairwise-distinct i1 AND i2: updating the cores
	// behind one cannot stale the others.
	a, b, c := idxFor(0, 0, 0), idxFor(1, 1, 0), idxFor(2, 2, 1)
	indices := []int{a, b, c}
	offsets := []int{0, 1, 2}
	tbl.Lookup(indices, offsets)

	// Fused update touching only index a: bumps versions of G1 row 0 and
	// G2 row 0 (and G3, which no prefix depends on).
	out := tbl.Lookup([]int{a}, []int{0})
	dOut := tensor.New(1, tbl.Dim())
	copy(dOut.Data, out.Data)
	tbl.Update([]int{a}, []int{0}, dOut, 0.01)

	h0, m0 := hits.Value(), misses.Value()
	tbl.Lookup(indices, offsets)
	if dh, dm := hits.Value()-h0, misses.Value()-m0; dh != 2 || dm != 1 {
		t.Fatalf("post-update batch: +hits=%d +misses=%d, want exactly b,c hit and a evicted (2/1)", dh, dm)
	}
}

// TestPrefixCacheUnfusedUpdateEvictsAll checks the conservative path: the
// unfused optimizer sweep rewrites whole cores, so it must bump every
// version and force a full recompute next batch.
func TestPrefixCacheUnfusedUpdateEvictsAll(t *testing.T) {
	tbl := newTestTable(t, 502)
	tbl.Opts.FusedUpdate = false
	hits, misses := cacheCounters(tbl)

	indices := []int{idxFor(0, 0, 0), idxFor(1, 1, 0), idxFor(2, 2, 1)}
	offsets := []int{0, 1, 2}
	out := tbl.Lookup(indices, offsets)
	dOut := tensor.New(len(offsets), tbl.Dim())
	copy(dOut.Data, out.Data)
	tbl.Update(indices, offsets, dOut, 0.01)

	h0, m0 := hits.Value(), misses.Value()
	tbl.Lookup(indices, offsets)
	if dh, dm := hits.Value()-h0, misses.Value()-m0; dh != 0 || dm != 3 {
		t.Fatalf("after unfused sweep: +hits=%d +misses=%d, want full recompute (0/3)", dh, dm)
	}
}

// TestPrefixCacheBitExactAgainstRecompute pins the hit contract: a Lookup
// served from cached prefix products is bit-identical to the batch-local
// recompute path (fresh-cache Forward) on the same table state.
func TestPrefixCacheBitExactAgainstRecompute(t *testing.T) {
	tbl := newTestTable(t, 503)
	r := tensor.NewRNG(504)
	indices, offsets := randomBatch(r, tbl.NumRows(), 32, 4)
	dOut := tensor.New(len(offsets), tbl.Dim())

	for step := 0; step < 4; step++ {
		got := tbl.Lookup(indices, offsets)
		want, _ := tbl.Forward(indices, offsets) // batch-local prefixes
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("step %d: shape %dx%d vs %dx%d", step, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i, v := range got.Data {
			if v != want.Data[i] {
				t.Fatalf("step %d: cached lookup diverges from recompute at %d: %v vs %v", step, i, v, want.Data[i])
			}
		}
		copy(dOut.Data, got.Data)
		tbl.Update(indices, offsets, dOut, 0.01)
	}
}

// TestInvalidatePrefixCache checks the explicit reset used by checkpoint
// restore: every cached product is dropped and the next batch fully misses.
func TestInvalidatePrefixCache(t *testing.T) {
	tbl := newTestTable(t, 505)
	hits, misses := cacheCounters(tbl)

	indices := []int{idxFor(0, 0, 0), idxFor(1, 1, 0), idxFor(2, 2, 1)}
	offsets := []int{0, 1, 2}
	tbl.Lookup(indices, offsets)
	tbl.InvalidatePrefixCache()

	h0, m0 := hits.Value(), misses.Value()
	tbl.Lookup(indices, offsets)
	if dh, dm := hits.Value()-h0, misses.Value()-m0; dh != 0 || dm != 3 {
		t.Fatalf("after invalidate: +hits=%d +misses=%d, want 0/3", dh, dm)
	}
}

// TestPrefixCacheDeterministicBypass checks Deterministic tables never touch
// the persistent cache (their recompute path must stay the documented one).
func TestPrefixCacheDeterministicBypass(t *testing.T) {
	tbl := newTestTable(t, 506)
	tbl.Deterministic = true
	hits, misses := cacheCounters(tbl)

	indices := []int{idxFor(0, 0, 0), idxFor(1, 1, 0)}
	offsets := []int{0, 1}
	tbl.Lookup(indices, offsets)
	tbl.Lookup(indices, offsets)
	if tbl.pcache != nil {
		t.Fatal("Deterministic table built a persistent prefix cache")
	}
	if h, m := hits.Value(), misses.Value(); h != 0 || m != 0 {
		t.Fatalf("Deterministic table recorded cache traffic: hits=%d misses=%d", h, m)
	}
}

// TestPrefixCacheEvictionRecycling drives the cache past its slot budget
// (forced tiny via many distinct prefixes ≤ budget floor of 64) and checks
// the slot arrays stop growing once every batch fits: round-robin eviction
// recycles idle slots instead of allocating new ones.
func TestPrefixCacheEvictionRecycling(t *testing.T) {
	tbl := newTestTable(t, 507)
	// testShape has only 20 prefixes, far under the 64-slot floor, so the
	// budget path can't trigger; exercise claimSlot's eviction directly.
	pc := tbl.prefixCacheFor(&ForwardCache{arena: true})
	if pc == nil {
		t.Fatal("expected a persistent cache")
	}
	budget := 4
	for i := 0; i < budget; i++ {
		s := pc.claimSlot(budget, nil)
		pc.slotOf[i] = s
		pc.key[s] = i
		pc.lastUse[s] = pc.seq
	}
	if len(pc.key) != budget {
		t.Fatalf("allocated %d slots, want %d", len(pc.key), budget)
	}
	// Next batch touches one old prefix and one new: the new prefix must
	// recycle an idle slot, not grow the arrays.
	pc.seq++
	pc.lastUse[pc.slotOf[0]] = pc.seq
	s := pc.claimSlot(budget, nil)
	if len(pc.key) != budget {
		t.Fatalf("claimSlot grew to %d slots at budget with idle slots available", len(pc.key))
	}
	if pc.lastUse[s] == pc.seq {
		t.Fatal("claimSlot evicted a slot live in the current batch")
	}
	// All slots live this batch: growth past budget is the documented
	// escape hatch.
	for i := range pc.lastUse {
		pc.lastUse[i] = pc.seq
	}
	if s := pc.claimSlot(budget, nil); int(s) != budget {
		t.Fatalf("expected growth slot %d when all slots are live, got %d", budget, s)
	}
}

// TestProtectPrefixesBitmap checks the id→prefix mapping and clear semantics
// of the lookahead protection set.
func TestProtectPrefixesBitmap(t *testing.T) {
	tbl := newTestTable(t, 510)
	tbl.ProtectPrefixes([]int{idxFor(1, 2, 3), idxFor(3, 0, 4)})
	prot := tbl.protected.Load()
	if prot == nil {
		t.Fatal("ProtectPrefixes stored nothing")
	}
	for pfx := 0; pfx < tbl.Shape.NumPrefixes(); pfx++ {
		want := pfx == 1*5+2 || pfx == 3*5+0
		if prot.has(pfx) != want {
			t.Errorf("prefix %d protected=%v, want %v", pfx, prot.has(pfx), want)
		}
	}
	// Rows sharing a prefix map to the same bit.
	tbl.ProtectPrefixes([]int{idxFor(2, 2, 0), idxFor(2, 2, 4)})
	prot = tbl.protected.Load()
	if !prot.has(2*5 + 2) {
		t.Error("shared prefix not protected")
	}
	tbl.ProtectPrefixes(nil)
	if tbl.protected.Load() != nil {
		t.Error("nil ids did not clear the protection set")
	}
	if (*protectedPrefixes)(nil).has(0) {
		t.Error("nil set protects prefixes")
	}
}

// TestClaimSlotSkipsProtected checks the eviction scan honors the protection
// set: idle-but-protected slots are passed over, and when every idle slot is
// protected the cache grows instead of recycling one.
func TestClaimSlotSkipsProtected(t *testing.T) {
	tbl := newTestTable(t, 511)
	pc := tbl.prefixCacheFor(&ForwardCache{arena: true})
	budget := 4
	for i := 0; i < budget; i++ {
		s := pc.claimSlot(budget, nil)
		pc.slotOf[i] = s
		pc.key[s] = i
		pc.lastUse[s] = pc.seq
	}
	// New batch: all slots idle, prefixes 0..2 protected. Only slot holding
	// prefix 3 may be recycled.
	pc.seq++
	prot := &protectedPrefixes{bits: make([]uint64, 1)}
	for pfx := 0; pfx < 3; pfx++ {
		prot.bits[0] |= 1 << uint(pfx)
	}
	s := pc.claimSlot(budget, prot)
	if len(pc.key) != budget {
		t.Fatalf("claimSlot grew to %d slots with an evictable unprotected slot", len(pc.key))
	}
	if pc.key[s] != 3 {
		t.Fatalf("claimSlot recycled the slot of protected prefix %d", pc.key[s])
	}
	// Protect everything: the only legal move is growth past budget.
	pc.slotOf[3] = s
	pc.key[s] = 3
	pc.lastUse[s] = pc.seq - 1 // idle again
	prot.bits[0] |= 1 << 3
	if s := pc.claimSlot(budget, prot); int(s) != budget {
		t.Fatalf("expected growth slot %d when every idle slot is protected, got %d", budget, s)
	}
}

// TestProtectPrefixesBitExactTraining: protection changes only which slots
// are recycled, never cached bytes — training with a protection set active
// matches an unprotected run exactly.
func TestProtectPrefixesBitExactTraining(t *testing.T) {
	run := func(protect bool) *Table {
		tbl := newTestTable(t, 512)
		r := tensor.NewRNG(513)
		indices, offsets := randomBatch(r, tbl.NumRows(), 12, 4)
		dOut := tensor.New(len(offsets), tbl.Dim())
		for step := 0; step < 8; step++ {
			if protect && step%3 == 0 {
				tbl.ProtectPrefixes(indices[:4])
			} else if protect {
				tbl.ProtectPrefixes(nil)
			}
			out := tbl.Lookup(indices, offsets)
			copy(dOut.Data, out.Data)
			tbl.Update(indices, offsets, dOut, 0.01)
		}
		return tbl
	}
	a, b := run(false), run(true)
	for k := range a.Cores {
		if diff := a.Cores[k].MaxAbsDiff(b.Cores[k]); diff != 0 {
			t.Fatalf("core %d differs by %v under protection", k, diff)
		}
	}
}
