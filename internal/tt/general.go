package tt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// GeneralShape describes a TT factorization with an arbitrary number of
// cores d ≥ 2 (the specialized Table fixes d = 3, the paper's choice; this
// is the generalization Equation 1 defines). Ranks has d−1 entries
// (R₁..R_{d−1}); R₀ = R_d = 1.
type GeneralShape struct {
	Rows, Dim  int
	RowFactors []int
	ColFactors []int
	Ranks      []int
}

// NewGeneralShape factorizes rows and dim into d balanced factors (rows
// padded up, dim exact) with uniform rank.
func NewGeneralShape(rows, dim, d, rank int) (GeneralShape, error) {
	if d < 2 {
		return GeneralShape{}, fmt.Errorf("tt: general shape needs d >= 2, got %d", d)
	}
	if rows <= 0 || dim <= 0 || rank <= 0 {
		return GeneralShape{}, fmt.Errorf("tt: invalid general shape %dx%d rank %d", rows, dim, rank)
	}
	colF, err := exactFactorsD(dim, d)
	if err != nil {
		return GeneralShape{}, err
	}
	ranks := make([]int, d-1)
	for i := range ranks {
		ranks[i] = rank
	}
	return GeneralShape{
		Rows:       rows,
		Dim:        dim,
		RowFactors: paddedFactorsD(rows, d),
		ColFactors: colF,
		Ranks:      ranks,
	}, nil
}

// D returns the number of cores.
func (s GeneralShape) D() int { return len(s.RowFactors) }

// rank returns R_k with the R₀ = R_d = 1 convention.
func (s GeneralShape) rank(k int) int {
	if k <= 0 || k >= s.D() {
		return 1
	}
	return s.Ranks[k-1]
}

// SliceSize returns the float count of one slice of core k (0-based):
// R_k × n_{k+1} × R_{k+1} in 1-based terms.
func (s GeneralShape) SliceSize(k int) int {
	return s.rank(k) * s.ColFactors[k] * s.rank(k+1)
}

// FactorIndex splits a row index into d TT indices (Equation 3).
func (s GeneralShape) FactorIndex(i int) []int {
	d := s.D()
	out := make([]int, d)
	for k := d - 1; k >= 0; k-- {
		out[k] = i % s.RowFactors[k]
		i /= s.RowFactors[k]
	}
	return out
}

// NumParams returns the trainable float count.
func (s GeneralShape) NumParams() int {
	total := 0
	for k := 0; k < s.D(); k++ {
		total += s.RowFactors[k] * s.SliceSize(k)
	}
	return total
}

// FootprintBytes returns the storage size of the cores.
func (s GeneralShape) FootprintBytes() int64 { return int64(s.NumParams()) * 4 }

// CompressionRatio returns dense bytes over TT bytes.
func (s GeneralShape) CompressionRatio() float64 {
	return float64(s.Rows) * float64(s.Dim) * 4 / float64(s.FootprintBytes())
}

// Validate reports whether the shape is consistent.
func (s GeneralShape) Validate() error {
	d := s.D()
	if d < 2 || len(s.ColFactors) != d || len(s.Ranks) != d-1 {
		return fmt.Errorf("tt: inconsistent general shape %+v", s)
	}
	prodR, prodC := 1, 1
	for k := 0; k < d; k++ {
		if s.RowFactors[k] <= 0 || s.ColFactors[k] <= 0 {
			return fmt.Errorf("tt: non-positive factor in %+v", s)
		}
		prodR *= s.RowFactors[k]
		prodC *= s.ColFactors[k]
	}
	if prodR < s.Rows {
		return fmt.Errorf("tt: row factors product %d < rows %d", prodR, s.Rows)
	}
	if prodC != s.Dim {
		return fmt.Errorf("tt: col factors product %d != dim %d", prodC, s.Dim)
	}
	for _, r := range s.Ranks {
		if r <= 0 {
			return fmt.Errorf("tt: non-positive rank in %+v", s)
		}
	}
	return nil
}

// GeneralTable is a TT table with an arbitrary number of cores. It provides
// the same sum-pooling Lookup/Update interface as the specialized 3-core
// Table (so it slots into a DLRM directly) with unique-index deduplication
// and multi-level prefix reuse in the forward pass: unique indices are
// processed in sorted order and the partial core products of the longest
// common TT-index prefix carry over between consecutive indices —
// generalizing the paper's two-core reuse buffer to every level.
type GeneralTable struct {
	Shape GeneralShape
	// Cores[k] has RowFactors[k] rows of SliceSize(k) floats; slice layout
	// is R_k × (n_{k+1}·R_{k+1}) row-major, matching the 3-core Table.
	Cores []*tensor.Matrix
}

// NewGeneralTable allocates random cores scaled so materialized rows land
// near targetStd (0 = default 0.05).
func NewGeneralTable(shape GeneralShape, rng *tensor.RNG, targetStd float64) *GeneralTable {
	if err := shape.Validate(); err != nil {
		//elrec:invariant shape pre-validated by callers; Shape.Validate is the error-returning path
		panic(err)
	}
	if targetStd <= 0 {
		targetStd = 0.05
	}
	d := shape.D()
	prodRanks := 1.0
	for _, r := range shape.Ranks {
		prodRanks *= float64(r)
	}
	sigma := math.Pow(targetStd*targetStd/prodRanks, 1/(2*float64(d)))
	t := &GeneralTable{Shape: shape, Cores: make([]*tensor.Matrix, d)}
	for k := 0; k < d; k++ {
		t.Cores[k] = tensor.New(shape.RowFactors[k], shape.SliceSize(k))
		rng.FillNormal(t.Cores[k].Data, float32(sigma))
	}
	return t
}

// NumRows returns the logical row count.
func (t *GeneralTable) NumRows() int { return t.Shape.Rows }

// Dim returns the embedding dimension.
func (t *GeneralTable) Dim() int { return t.Shape.Dim }

// FootprintBytes returns core storage in bytes.
func (t *GeneralTable) FootprintBytes() int64 { return t.Shape.FootprintBytes() }

// leftSizes returns N_k = n₁·..·n_k for k = 0..d.
func (t *GeneralTable) leftSizes() []int {
	d := t.Shape.D()
	out := make([]int, d+1)
	out[0] = 1
	for k := 0; k < d; k++ {
		out[k+1] = out[k] * t.Shape.ColFactors[k]
	}
	return out
}

// extendLeft computes L_{k+1} from L_k: (N_k × R_k) · slice(R_k × n R') →
// reshape to N_{k+1} × R_{k+1}.
func (t *GeneralTable) extendLeft(k int, left []float32, slice []float32, dst []float32) {
	n := t.leftSizes()
	tensor.GemmInto(n[k], t.Shape.rank(k), t.Shape.ColFactors[k]*t.Shape.rank(k+1), left, slice, dst)
}

// LookupRow materializes one row.
func (t *GeneralTable) LookupRow(i int, dst []float32) {
	if i < 0 || i >= t.Shape.Rows {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic(fmt.Sprintf("tt: general LookupRow index %d out of [0,%d)", i, t.Shape.Rows))
	}
	if len(dst) != t.Shape.Dim {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic(fmt.Sprintf("tt: general LookupRow dst len %d want %d", len(dst), t.Shape.Dim))
	}
	idx := t.Shape.FactorIndex(i)
	n := t.leftSizes()
	cur := []float32{1}
	for k := 0; k < t.Shape.D(); k++ {
		next := make([]float32, n[k+1]*t.Shape.rank(k+1))
		t.extendLeft(k, cur, t.Cores[k].Row(idx[k]), next)
		cur = next
	}
	copy(dst, cur)
}

// Materialize reconstructs the full logical table.
func (t *GeneralTable) Materialize() *tensor.Matrix {
	out := tensor.New(t.Shape.Rows, t.Shape.Dim)
	for i := 0; i < t.Shape.Rows; i++ {
		t.LookupRow(i, out.Row(i))
	}
	return out
}

// Lookup performs the sum-pooled batch lookup with dedup + multi-level
// prefix reuse and caches the batch for Update.
func (t *GeneralTable) Lookup(indices, offsets []int) *tensor.Matrix {
	t.validate(indices, offsets)

	uniq, inverse := embedding.Unique(indices)
	rows := t.uniqueRows(uniq)

	out := tensor.New(len(offsets), t.Shape.Dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		row := out.Row(s)
		for p := start; p < end; p++ {
			tensor.AddTo(row, rows.Row(inverse[p]))
		}
	}
	return out
}

// uniqueRows materializes one row per unique index, reusing the partial
// products shared by the longest common TT-index prefix between
// consecutive indices in sorted order.
func (t *GeneralTable) uniqueRows(uniq []int) *tensor.Matrix {
	d := t.Shape.D()
	n := t.leftSizes()
	rows := tensor.New(len(uniq), t.Shape.Dim)

	order := make([]int, len(uniq))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return uniq[order[a]] < uniq[order[b]] })

	// partial[k] holds L_{k+1} for the current prefix (after consuming core k).
	partial := make([][]float32, d)
	for k := 0; k < d; k++ {
		partial[k] = make([]float32, n[k+1]*t.Shape.rank(k+1))
	}
	var prevIdx []int
	for _, u := range order {
		idx := t.Shape.FactorIndex(uniq[u])
		// Longest common prefix with the previous index.
		common := 0
		if prevIdx != nil {
			for common < d && idx[common] == prevIdx[common] {
				common++
			}
		}
		cur := []float32{1}
		if common > 0 {
			cur = partial[common-1]
		}
		for k := common; k < d; k++ {
			t.extendLeft(k, cur, t.Cores[k].Row(idx[k]), partial[k])
			cur = partial[k]
		}
		copy(rows.Row(u), cur)
		prevIdx = idx
	}
	return rows
}

// Update computes core gradients for the most recent (or given) batch with
// in-advance gradient aggregation and applies SGD.
func (t *GeneralTable) Update(indices, offsets []int, dOut *tensor.Matrix, lr float32) {
	t.validate(indices, offsets)
	if dOut.Rows != len(offsets) || dOut.Cols != t.Shape.Dim {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic(fmt.Sprintf("tt: general Update grad %dx%d want %dx%d", dOut.Rows, dOut.Cols, len(offsets), t.Shape.Dim))
	}
	uniq, inverse := embedding.Unique(indices)
	grads := tensor.New(len(uniq), t.Shape.Dim)
	for s := range offsets {
		start := offsets[s]
		end := len(indices)
		if s+1 < len(offsets) {
			end = offsets[s+1]
		}
		src := dOut.Row(s)
		for p := start; p < end; p++ {
			tensor.AddTo(grads.Row(inverse[p]), src)
		}
	}
	// Accumulate exact batch gradients into core-shaped buffers, then apply
	// one SGD step (the unfused discipline; the specialized Table offers the
	// fused variant).
	bufs := make([]*tensor.Matrix, t.Shape.D())
	for k := range bufs {
		bufs[k] = tensor.New(t.Cores[k].Rows, t.Cores[k].Cols)
	}
	for u, idx := range uniq {
		t.backwardRow(idx, grads.Row(u), bufs)
	}
	for k := range bufs {
		tensor.Axpy(-lr, bufs[k].Data, t.Cores[k].Data)
	}
}

// backwardRow accumulates the core gradients of one row into bufs.
//
// With L_k = cores 1..k product (N_k × R_k) and Rt_k = cores k+1..d product
// (R_k × M_k, M_k = n_{k+1}..n_d), the gradient of core k's slice is
//
//	dG_k = L_{k-1}ᵀ · reshape(g·Rt_kᵀ, N_{k-1} × n_k·R_k)
func (t *GeneralTable) backwardRow(row int, g []float32, bufs []*tensor.Matrix) {
	d := t.Shape.D()
	idx := t.Shape.FactorIndex(row)
	n := t.leftSizes()

	// Left partial products L_0..L_{d-1}.
	lefts := make([][]float32, d)
	lefts[0] = []float32{1}
	cur := lefts[0]
	for k := 0; k+1 < d; k++ {
		next := make([]float32, n[k+1]*t.Shape.rank(k+1))
		t.extendLeft(k, cur, t.Cores[k].Row(idx[k]), next)
		lefts[k+1] = next
		cur = next
	}

	// Right partial products Rt_k for k = d..1 (Rt_d = [1]).
	// Rt_k has shape R_k × M_k where M_k = Dim / N_k.
	rights := make([][]float32, d+1)
	rights[d] = []float32{1}
	for k := d - 1; k >= 1; k-- {
		rk := t.Shape.rank(k)
		rk1 := t.Shape.rank(k + 1)
		nk1 := t.Shape.ColFactors[k]
		mNext := t.Shape.Dim / n[k+1] // M_{k+1}
		m := nk1 * mNext              // M_k
		out := make([]float32, rk*m)
		slice := t.Cores[k].Row(idx[k]) // R_k × (n_{k+1} R_{k+1})
		for j := 0; j < nk1; j++ {
			// block = slice[:, j·R_{k+1}:(j+1)·R_{k+1}] (R_k × R_{k+1})
			// out[:, j·mNext:(j+1)·mNext] = block · Rt_{k+1}
			for r := 0; r < rk; r++ {
				blockRow := slice[r*nk1*rk1+j*rk1 : r*nk1*rk1+(j+1)*rk1]
				dst := out[r*m+j*mNext : r*m+(j+1)*mNext]
				for rr, bv := range blockRow {
					if bv == 0 {
						continue
					}
					tensor.Axpy(bv, rights[k+1][rr*mNext:(rr+1)*mNext], dst)
				}
			}
		}
		rights[k] = out
	}

	// Per-core gradient and SGD update.
	for k := 0; k < d; k++ {
		rkPrev := t.Shape.rank(k) // R_{k-1} in 1-based terms
		rkNext := t.Shape.rank(k + 1)
		nk := t.Shape.ColFactors[k]
		mK := t.Shape.Dim / n[k+1] // M_k (cols of Rt_{k+1} in 1-based = rights[k+1])
		// B = g (viewed N_k·n_k × M_k) · Rt_kᵀ → (N_k·n_k × R_k); flat buffer
		// equals N_{k-1} × (n_k·R_k) row-major in 1-based terms.
		rowsB := n[k] * nk
		b := make([]float32, rowsB*rkNext)
		tensor.GemmTransBAddInto(rowsB, mK, rkNext, g, rights[k+1], b)
		// dG = L_{k-1}ᵀ · B  (R_{k-1} × n_k·R_k), accumulated per slice.
		tensor.GemmTransAAddInto(rkPrev, n[k], nk*rkNext, lefts[k], b, bufs[k].Row(idx[k]))
	}
}

func (t *GeneralTable) validate(indices, offsets []int) {
	if len(offsets) == 0 {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic("tt: general table empty offsets")
	}
	if offsets[0] != 0 {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic("tt: general table offsets[0] != 0")
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			//elrec:invariant index bounds/shape contract: inputs are validated upstream
			panic("tt: general table offsets not monotone")
		}
	}
	if offsets[len(offsets)-1] > len(indices) {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic("tt: general table last offset exceeds indices")
	}
	for _, idx := range indices {
		if idx < 0 || idx >= t.Shape.Rows {
			//elrec:invariant index bounds/shape contract: inputs are validated upstream
			panic(fmt.Sprintf("tt: general table index %d out of [0,%d)", idx, t.Shape.Rows))
		}
	}
}

// paddedFactorsD factorizes n into d near-equal factors with product ≥ n.
func paddedFactorsD(n, d int) []int {
	out := make([]int, d)
	rest := n
	for k := d - 1; k >= 0; k-- {
		f := int(math.Ceil(math.Pow(float64(rest), 1/float64(k+1))))
		if f < 1 {
			f = 1
		}
		out[k] = f
		rest = ceilDiv(rest, f)
	}
	return out
}

// exactFactorsD factorizes n into d factors with exact product, as balanced
// as a greedy divisor search can make them.
func exactFactorsD(n, d int) ([]int, error) {
	out := make([]int, d)
	rest := n
	for k := d - 1; k >= 1; k-- {
		target := math.Pow(float64(rest), 1/float64(k+1))
		// Largest divisor of rest that is ≤ ceil(target), else smallest ≥.
		f := 1
		for c := int(math.Ceil(target)); c >= 1; c-- {
			if rest%c == 0 {
				f = c
				break
			}
		}
		if f == 1 {
			for c := int(math.Ceil(target)) + 1; c <= rest; c++ {
				if rest%c == 0 {
					f = c
					break
				}
			}
		}
		out[k] = f
		rest /= f
	}
	out[0] = rest
	prod := 1
	for _, f := range out {
		prod *= f
	}
	if prod != n {
		return nil, fmt.Errorf("tt: cannot factor dim %d into %d factors", n, d)
	}
	return out, nil
}
