package tt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// SVD computes a full singular value decomposition A = U·diag(s)·Vᵀ using
// one-sided Jacobi rotations with float64 accumulation. U is rows×k,
// V is cols×k and s has k = min(rows, cols)... in fact k = cols here; for
// rows < cols the caller should decompose Aᵀ. Singular values are returned
// in descending order. The implementation targets the moderate matrices of
// TT-SVD initialization, not large-scale numerics.
func SVD(a *tensor.Matrix) (u *tensor.Matrix, s []float32, v *tensor.Matrix) {
	rows, cols := a.Rows, a.Cols
	// Work in float64 column-major for cache-friendly column rotations.
	b := make([][]float64, cols)
	for j := 0; j < cols; j++ {
		col := make([]float64, rows)
		for i := 0; i < rows; i++ {
			col[i] = float64(a.At(i, j))
		}
		b[j] = col
	}
	vm := make([][]float64, cols)
	for j := range vm {
		vm[j] = make([]float64, cols)
		vm[j][j] = 1
	}

	const (
		eps       = 1e-12
		maxSweeps = 60
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				alpha, beta, gamma := 0.0, 0.0, 0.0
				bp, bq := b[p], b[q]
				for i := 0; i < rows; i++ {
					alpha += bp[i] * bp[i]
					beta += bq[i] * bq[i]
					gamma += bp[i] * bq[i]
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				off += math.Abs(gamma)
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < rows; i++ {
					bpi, bqi := bp[i], bq[i]
					bp[i] = c*bpi - sn*bqi
					bq[i] = sn*bpi + c*bqi
				}
				vp, vq := vm[p], vm[q]
				for i := 0; i < cols; i++ {
					vpi, vqi := vp[i], vq[i]
					vp[i] = c*vpi - sn*vqi
					vq[i] = sn*vpi + c*vqi
				}
			}
		}
		if off < eps {
			break
		}
	}

	// Column norms are the singular values.
	type sv struct {
		val float64
		idx int
	}
	svs := make([]sv, cols)
	for j := 0; j < cols; j++ {
		var n float64
		for i := 0; i < rows; i++ {
			n += b[j][i] * b[j][i]
		}
		svs[j] = sv{math.Sqrt(n), j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].val > svs[j].val })

	u = tensor.New(rows, cols)
	v = tensor.New(cols, cols)
	s = make([]float32, cols)
	for rank, e := range svs {
		s[rank] = float32(e.val)
		inv := 0.0
		if e.val > eps {
			inv = 1 / e.val
		}
		for i := 0; i < rows; i++ {
			u.Set(i, rank, float32(b[e.idx][i]*inv))
		}
		for i := 0; i < cols; i++ {
			v.Set(i, rank, float32(vm[e.idx][i]))
		}
	}
	return u, s, v
}

// DecomposeDense performs truncated TT-SVD of a dense rows×dim table into a
// Table of the given shape (ranks taken from the shape). This is the
// "initialize TT cores from a pretrained table" extension of TT-Rec: the
// returned table materializes to the best rank-(R₁,R₂) TT approximation the
// two sequential truncated SVDs find. Rows beyond w.Rows (padding) are zero.
func DecomposeDense(w *tensor.Matrix, shape Shape) (*Table, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if w.Rows != shape.Rows || w.Cols != shape.Dim {
		return nil, fmt.Errorf("tt: dense table %dx%d does not match shape %v", w.Rows, w.Cols, shape)
	}
	m, n := shape.RowFactors, shape.ColFactors
	r1, r2 := shape.R1, shape.R2

	// Unfolding 1: rows (i₁,j₁) → m₁n₁; cols ((i₂,j₂),(i₃,j₃)).
	rest := m[1] * n[1] * m[2] * n[2]
	a := tensor.New(m[0]*n[0], rest)
	for i := 0; i < shape.Rows; i++ {
		i1, i2, i3 := shape.FactorIndex(i)
		for j := 0; j < shape.Dim; j++ {
			j1 := j / (n[1] * n[2])
			j2 := (j / n[2]) % n[1]
			j3 := j % n[2]
			row := i1*n[0] + j1
			col := (i2*n[1]+j2)*(m[2]*n[2]) + i3*n[2] + j3
			a.Set(row, col, w.At(i, j))
		}
	}

	u1, s1, v1 := svdEconomy(a)
	k1 := clampRank(r1, len(s1))
	if k1 < r1 {
		return nil, fmt.Errorf("tt: rank R1=%d exceeds unfolding rank bound %d", r1, k1)
	}

	// B = S₁·V₁ᵀ truncated to R₁ rows: R₁ × rest.
	b := tensor.New(r1, rest)
	for r := 0; r < r1; r++ {
		for c := 0; c < rest; c++ {
			b.Set(r, c, s1[r]*v1.At(c, r))
		}
	}

	// Unfolding 2: rows (r₁,i₂,j₂) → R₁m₂n₂; cols (i₃,j₃).
	b2 := tensor.New(r1*m[1]*n[1], m[2]*n[2])
	for r := 0; r < r1; r++ {
		for c := 0; c < rest; c++ {
			ij2 := c / (m[2] * n[2])
			ij3 := c % (m[2] * n[2])
			b2.Set(r*m[1]*n[1]+ij2, ij3, b.At(r, c))
		}
	}
	u2, s2, v2 := svdEconomy(b2)
	k2 := clampRank(r2, len(s2))
	if k2 < r2 {
		return nil, fmt.Errorf("tt: rank R2=%d exceeds unfolding rank bound %d", r2, k2)
	}

	t := &Table{Shape: shape, Opts: EffOptions()}
	sz := shape.SliceSizes()
	for k := 0; k < Dims; k++ {
		t.Cores[k] = tensor.New(shape.RowFactors[k], sz[k])
	}
	// Core 1: slice[i₁][j₁·R₁ + r] = U₁[i₁n₁+j₁, r].
	for i1 := 0; i1 < m[0]; i1++ {
		slice := t.Cores[0].Row(i1)
		for j1 := 0; j1 < n[0]; j1++ {
			for r := 0; r < r1; r++ {
				slice[j1*r1+r] = u1.At(i1*n[0]+j1, r)
			}
		}
	}
	// Core 2: slice[i₂][r·n₂R₂ + j₂·R₂ + r'] = U₂[(r·m₂+i₂)·n₂+j₂, r'].
	for i2 := 0; i2 < m[1]; i2++ {
		slice := t.Cores[1].Row(i2)
		for r := 0; r < r1; r++ {
			for j2 := 0; j2 < n[1]; j2++ {
				for rp := 0; rp < r2; rp++ {
					slice[r*n[1]*r2+j2*r2+rp] = u2.At((r*m[1]+i2)*n[1]+j2, rp)
				}
			}
		}
	}
	// Core 3: slice[i₃][r'·n₃ + j₃] = S₂V₂ᵀ[r', i₃n₃+j₃].
	for i3 := 0; i3 < m[2]; i3++ {
		slice := t.Cores[2].Row(i3)
		for rp := 0; rp < r2; rp++ {
			for j3 := 0; j3 < n[2]; j3++ {
				slice[rp*n[2]+j3] = s2[rp] * v2.At(i3*n[2]+j3, rp)
			}
		}
	}
	return t, nil
}

// svdEconomy decomposes via the narrower side to bound Jacobi cost:
// when rows < cols it decomposes the transpose and swaps U/V.
func svdEconomy(a *tensor.Matrix) (u *tensor.Matrix, s []float32, v *tensor.Matrix) {
	if a.Rows >= a.Cols {
		return SVD(a)
	}
	vt, s, ut := SVD(a.Transpose())
	return ut, s, vt
}

// clampRank returns min(r, available non-trivial rank bound).
func clampRank(r, bound int) int {
	if r > bound {
		return bound
	}
	return r
}
