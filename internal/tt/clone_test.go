package tt

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// cloneTestTable builds a small Eff-TT table with a warm arena cache so the
// clone starts from a table whose mutable scratch is fully populated.
func cloneTestTable(t *testing.T) (*Table, []int, []int) {
	t.Helper()
	shape, err := NewShape(4096, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(shape, tensor.NewRNG(77), 0)
	indices := make([]int, 256)
	offsets := make([]int, 64)
	for i := range indices {
		indices[i] = (i * 131) % shape.Rows
	}
	for s := range offsets {
		offsets[s] = s * 4
	}
	tbl.Lookup(indices, offsets) // warm arena + prefix cache
	return tbl, indices, offsets
}

// TestCloneForServingMatchesSource checks a clone reproduces the source
// table's lookups bit-exactly while sharing the core storage.
func TestCloneForServingMatchesSource(t *testing.T) {
	tbl, indices, offsets := cloneTestTable(t)
	clone := tbl.CloneForServing()

	for k := 0; k < Dims; k++ {
		if clone.Cores[k] != tbl.Cores[k] {
			t.Fatalf("core %d not shared: clone must reference the source matrices", k)
		}
	}

	want := tbl.Lookup(indices, offsets)
	got := clone.Lookup(indices, offsets)
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("clone lookup differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	// The clone owns its arena: a lookup on the clone must not disturb the
	// source's retained output (which aliases the source arena).
	ref := tbl.Lookup(indices, offsets)
	snapshot := append([]float32(nil), ref.Data...)
	clone.Lookup(indices[:64], offsets[:16])
	for i := range snapshot {
		if ref.Data[i] != snapshot[i] {
			t.Fatalf("clone lookup mutated source arena at %d", i)
		}
	}
}

// TestCloneForServingConcurrentLookups drives many goroutines through
// distinct clones under -race: clones share only the immutable cores, so
// the race detector must stay silent and every result must match the
// serial reference.
func TestCloneForServingConcurrentLookups(t *testing.T) {
	tbl, indices, offsets := cloneTestTable(t)
	ref := tbl.Lookup(indices, offsets)
	want := append([]float32(nil), ref.Data...)

	const goroutines = 8
	clones := make([]*Table, goroutines)
	for g := range clones {
		clones[g] = tbl.CloneForServing()
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				out := clones[g].Lookup(indices, offsets)
				for i := range want {
					if out.Data[i] != want[i] {
						errs <- fmt.Errorf("clone %d iter %d: lookup mismatch at %d", g, iter, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
