package tt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGeneralShapeValidation(t *testing.T) {
	if _, err := NewGeneralShape(100, 16, 1, 4); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := NewGeneralShape(0, 16, 3, 4); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewGeneralShape(100, 16, 3, 0); err == nil {
		t.Fatal("zero rank accepted")
	}
	for _, d := range []int{2, 3, 4, 5} {
		s, err := NewGeneralShape(1000, 16, d, 4)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if s.D() != d {
			t.Fatalf("D() = %d want %d", s.D(), d)
		}
		prod := 1
		for _, f := range s.ColFactors {
			prod *= f
		}
		if prod != 16 {
			t.Fatalf("d=%d col factors %v", d, s.ColFactors)
		}
	}
}

func TestGeneralFactorIndexRoundTrip(t *testing.T) {
	s, err := NewGeneralShape(5000, 16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2499, 4999} {
		idx := s.FactorIndex(i)
		back := 0
		for k, f := range s.RowFactors {
			back = back*f + idx[k]
		}
		if back != i {
			t.Fatalf("FactorIndex(%d) = %v reconstructs to %d", i, idx, back)
		}
	}
}

func TestGeneralMatchesSpecializedD3(t *testing.T) {
	// A GeneralTable sharing the specialized 3-core Table's cores must
	// produce identical rows: the slice layouts are designed to coincide.
	spec := testShape(t)
	tbl3 := NewTable(spec, tensor.NewRNG(70), 0.1)
	gshape := GeneralShape{
		Rows:       spec.Rows,
		Dim:        spec.Dim,
		RowFactors: spec.RowFactors[:],
		ColFactors: spec.ColFactors[:],
		Ranks:      []int{spec.R1, spec.R2},
	}
	if err := gshape.Validate(); err != nil {
		t.Fatal(err)
	}
	g := &GeneralTable{Shape: gshape, Cores: tbl3.Cores[:]}
	a := tbl3.Materialize()
	b := g.Materialize()
	if d := a.MaxAbsDiff(b); d > 1e-5 {
		t.Fatalf("general d=3 deviates from specialized by %v", d)
	}
}

func TestGeneralLookupMatchesMaterialize(t *testing.T) {
	for _, d := range []int{2, 4} {
		s, err := NewGeneralShape(300, 16, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGeneralTable(s, tensor.NewRNG(71), 0.1)
		mat := g.Materialize()
		r := tensor.NewRNG(72)
		indices, offsets := randomBatch(r, 300, 12, 3)
		got := g.Lookup(indices, offsets)
		want := refLookup(mat, indices, offsets)
		if diff := got.MaxAbsDiff(want); diff > 1e-4 {
			t.Fatalf("d=%d lookup deviates by %v", d, diff)
		}
	}
}

func TestGeneralBackwardGradCheck(t *testing.T) {
	s, err := NewGeneralShape(120, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGeneralTable(s, tensor.NewRNG(73), 0.2)
	indices, offsets := []int{3, 77, 77, 110}, []int{0, 2}

	lossOf := func() float64 {
		out := g.Lookup(indices, offsets)
		var sum float64
		for _, v := range out.Data {
			sum += 0.5 * float64(v) * float64(v)
		}
		return sum
	}

	before := make([]*tensor.Matrix, s.D())
	for k := range before {
		before[k] = g.Cores[k].Clone()
	}
	out := g.Lookup(indices, offsets)
	g.Update(indices, offsets, out, 1.0) // lr=1: cores move by -grad

	const h = 1e-3
	for k := 0; k < s.D(); k++ {
		probes := []int{0, len(before[k].Data) / 2, len(before[k].Data) - 1}
		for _, pi := range probes {
			analytic := float64(before[k].Data[pi] - g.Cores[k].Data[pi])
			// Numeric gradient on a pristine copy.
			probe := &GeneralTable{Shape: s, Cores: make([]*tensor.Matrix, s.D())}
			for kk := range probe.Cores {
				probe.Cores[kk] = before[kk].Clone()
			}
			eval := func() float64 {
				outP := probe.Lookup(indices, offsets)
				var sum float64
				for _, v := range outP.Data {
					sum += 0.5 * float64(v) * float64(v)
				}
				return sum
			}
			probe.Cores[k].Data[pi] = before[k].Data[pi] + h
			lp := eval()
			probe.Cores[k].Data[pi] = before[k].Data[pi] - h
			lm := eval()
			numeric := (lp - lm) / (2 * h)
			if math.Abs(analytic-numeric) > 1e-2*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("core %d entry %d: analytic %v numeric %v", k, pi, analytic, numeric)
			}
		}
	}
	_ = lossOf
}

func TestGeneralCompressionImprovesWithD(t *testing.T) {
	// Deeper factorizations compress large tables harder (at equal rank) —
	// the reason TT-Rec supports d = 4.
	s3, err := NewGeneralShape(1_000_000, 64, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NewGeneralShape(1_000_000, 64, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s4.CompressionRatio() <= s3.CompressionRatio() {
		t.Fatalf("d=4 ratio %.0f not above d=3 ratio %.0f", s4.CompressionRatio(), s3.CompressionRatio())
	}
}

func TestGeneralTrainingConverges(t *testing.T) {
	s, err := NewGeneralShape(200, 16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGeneralTable(s, tensor.NewRNG(74), 0.1)
	r := tensor.NewRNG(75)
	target := tensor.New(1, 16)
	r.FillUniform(target.Data, 0.5)
	indices, offsets := []int{5, 90, 150}, []int{0, 1, 2}

	lossAt := func() float64 {
		out := g.Lookup(indices, offsets)
		var sum float64
		for i, v := range out.Data {
			d := float64(v) - float64(target.Data[i%16])
			sum += d * d
		}
		return sum
	}
	initial := lossAt()
	for step := 0; step < 1200; step++ {
		out := g.Lookup(indices, offsets)
		dOut := tensor.New(out.Rows, out.Cols)
		for i := range out.Data {
			dOut.Data[i] = 2 * (out.Data[i] - target.Data[i%16])
		}
		g.Update(indices, offsets, dOut, 0.02)
	}
	if final := lossAt(); final > initial*0.1 {
		t.Fatalf("d=4 training did not converge: %v -> %v", initial, final)
	}
}

func TestGeneralValidationPanics(t *testing.T) {
	s, _ := NewGeneralShape(50, 8, 3, 2)
	g := NewGeneralTable(s, tensor.NewRNG(76), 0.1)
	for _, c := range []func(){
		func() { g.Lookup([]int{1}, nil) },
		func() { g.Lookup([]int{50}, []int{0}) },
		func() { g.LookupRow(-1, make([]float32, 8)) },
		func() { g.LookupRow(0, make([]float32, 3)) },
		func() { g.Update([]int{1}, []int{0}, tensor.New(2, 8), 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid general-table call did not panic")
				}
			}()
			c()
		}()
	}
}

// Property: d-core lookup equals materialized reference for random d/shapes.
func TestQuickGeneralLookupAgainstMaterialized(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		d := 2 + r.Intn(3)
		dims := []int{8, 16, 24}
		dim := dims[r.Intn(len(dims))]
		rows := 20 + r.Intn(150)
		s, err := NewGeneralShape(rows, dim, d, 1+r.Intn(4))
		if err != nil {
			return true
		}
		g := NewGeneralTable(s, tensor.NewRNG(seed+1), 0.1)
		mat := g.Materialize()
		indices, offsets := randomBatch(r, rows, 1+r.Intn(6), 3)
		got := g.Lookup(indices, offsets)
		want := refLookup(mat, indices, offsets)
		return got.MaxAbsDiff(want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
