package tt

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// TestForwardMetricsKnownBatch checks the exported counters and ratio
// gauges against a hand-computed batch. testShape has RowFactors {4,5,5},
// so Prefix(idx) = idx/5: indices 0 and 1 share prefix 0, index 7 has
// prefix 1.
func TestForwardMetricsKnownBatch(t *testing.T) {
	tbl := newTestTable(t, 3)
	reg := obs.NewRegistry()
	tbl.AttachMetrics(reg)

	indices := []int{0, 0, 1, 1, 7, 7}
	offsets := []int{0, 3}
	tbl.Forward(indices, offsets)

	snap := reg.Snapshot()
	wantCounters := map[string]int64{
		"tt_indices":               6, // occurrences entering Forward
		"tt_work_items":            3, // unique rows {0, 1, 7}
		"tt_prefix_work":           3, // all three work items hit the prefix stage
		"tt_unique_prefixes":       2, // prefixes {0, 1}
		"tt_batched_gemm_launches": 1,
		"tt_batched_gemm_ops":      2, // one GEMM per unique prefix
	}
	for name, want := range wantCounters {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d want %d", name, got, want)
		}
	}
	if got := snap.Gauges["tt_dedup_ratio"]; got != 2.0 {
		t.Errorf("tt_dedup_ratio = %v want 2", got)
	}
	if got, want := snap.Gauges["tt_prefix_hit_rate"], 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("tt_prefix_hit_rate = %v want %v", got, want)
	}

	// A second identical batch doubles the counters; the cumulative ratios
	// are unchanged.
	tbl.Forward(indices, offsets)
	snap = reg.Snapshot()
	if got := snap.Counter("tt_indices"); got != 12 {
		t.Errorf("tt_indices after second batch = %d want 12", got)
	}
	if got := snap.Gauges["tt_dedup_ratio"]; got != 2.0 {
		t.Errorf("tt_dedup_ratio after second batch = %v want 2", got)
	}
}

// TestBackwardMetricsAggregation checks the in-advance-aggregation split on
// a known batch: 6 gradient occurrences collapse to 3 aggregated rows.
func TestBackwardMetricsAggregation(t *testing.T) {
	tbl := newTestTable(t, 7)
	reg := obs.NewRegistry()
	tbl.AttachMetrics(reg)

	indices := []int{0, 0, 1, 1, 7, 7}
	offsets := []int{0, 3}
	grad := tensor.New(len(offsets), tbl.Shape.Dim)
	tensor.NewRNG(21).FillUniform(grad.Data, 0.1)
	tbl.Update(indices, offsets, grad, 0.01)

	snap := reg.Snapshot()
	if got := snap.Counter("tt_backward_rows"); got != 6 {
		t.Errorf("tt_backward_rows = %d want 6", got)
	}
	if got := snap.Counter("tt_backward_work"); got != 3 {
		t.Errorf("tt_backward_work = %d want 3", got)
	}
	if got := snap.Gauges["tt_backward_agg_ratio"]; got != 2.0 {
		t.Errorf("tt_backward_agg_ratio = %v want 2", got)
	}

	// Without in-advance aggregation every occurrence is a gradient row.
	naive := newTestTable(t, 8)
	naive.Opts = NaiveOptions()
	regN := obs.NewRegistry()
	naive.AttachMetrics(regN)
	naive.Update(indices, offsets, grad, 0.01)
	if got := regN.Snapshot().Counter("tt_backward_work"); got != 6 {
		t.Errorf("naive tt_backward_work = %d want 6", got)
	}
}

// TestForwardMetricsSharedAcrossTables checks that two tables attached to
// one registry aggregate into the same instruments.
func TestForwardMetricsSharedAcrossTables(t *testing.T) {
	a := newTestTable(t, 4)
	b := newTestTable(t, 5)
	reg := obs.NewRegistry()
	a.AttachMetrics(reg)
	b.AttachMetrics(reg)

	a.Forward([]int{0, 0}, []int{0})
	b.Forward([]int{1, 2, 3}, []int{0})

	if got := reg.Snapshot().Counter("tt_indices"); got != 5 {
		t.Fatalf("aggregated tt_indices = %d want 5", got)
	}
}

// TestForwardMetricsDetached checks the unattached and nil-registry paths
// stay no-ops (and do not panic).
func TestForwardMetricsDetached(t *testing.T) {
	tbl := newTestTable(t, 6)
	tbl.Forward([]int{0, 1}, []int{0}) // never attached

	tbl.AttachMetrics(nil) // explicit nil registry
	tbl.Forward([]int{0, 1}, []int{0})
}

// benchTable builds a larger table for the instrumentation-overhead
// benchmark.
func benchTable(b *testing.B) *Table {
	s, err := NewShapeExplicit(4096, 32, [Dims]int{16, 16, 16}, [Dims]int{4, 4, 2}, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	return NewTable(s, tensor.NewRNG(11), 0.05)
}

// benchBatch builds a Zipf-ish skewed batch so dedup and prefix reuse have
// structure to exploit, as in training.
func benchBatch(rows, batch, bag int) (indices, offsets []int) {
	r := tensor.NewRNG(13)
	offsets = make([]int, batch)
	for s := 0; s < batch; s++ {
		offsets[s] = len(indices)
		for i := 0; i < bag; i++ {
			indices = append(indices, r.Intn(rows/4))
		}
	}
	return indices, offsets
}

// BenchmarkForwardInstrumentation measures the TT forward pass with metrics
// detached vs attached; the acceptance bar is ≤5% overhead when disabled
// (the "off" case is the default construction path).
func BenchmarkForwardInstrumentation(b *testing.B) {
	indices, offsets := benchBatch(4096, 128, 8)
	b.Run("off", func(b *testing.B) {
		tbl := benchTable(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.Forward(indices, offsets)
		}
	})
	b.Run("on", func(b *testing.B) {
		tbl := benchTable(b)
		tbl.AttachMetrics(obs.NewRegistry())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.Forward(indices, offsets)
		}
	})
}
