// Package tt implements tensor-train (TT) compressed embedding tables: the
// plain TT table of TT-Rec and the paper's Eff-TT table with two-level
// intermediate-result reuse in the forward pass and in-advance gradient
// aggregation plus fused core updates in the backward pass (§III).
//
// A table of M rows and N columns is factorized as M = m₁·m₂·m₃ (rows are
// padded up to the product) and N = n₁·n₂·n₃ (exact), and represented by
// three TT cores. Core k holds one slice per i_k:
//
//	G₁[i₁] : n₁ × R₁
//	G₂[i₂] : R₁ × (n₂·R₂)   (columns ordered (j₂, r₂))
//	G₃[i₃] : R₂ × n₃
//
// so that row(i) = reshape(G₁[i₁]·G₂[i₂], n₁n₂×R₂) · G₃[i₃], flattened in
// (j₁, j₂, j₃) order. The product of the first two cores for a prefix
// (i₁,i₂) — equivalently prefix = i / m₃ — is the reusable intermediate of
// Algorithm 1.
package tt

import (
	"fmt"
	"math"
)

// Dims is the number of TT cores; the paper (like TT-Rec) uses 3.
const Dims = 3

// Shape describes the factorization of an embedding table into TT cores.
type Shape struct {
	Rows int // logical number of embedding rows (M)
	Dim  int // embedding dimension (N)

	RowFactors [Dims]int // m₁, m₂, m₃ with m₁·m₂·m₃ ≥ Rows
	ColFactors [Dims]int // n₁, n₂, n₃ with n₁·n₂·n₃ == Dim
	R1, R2     int       // TT ranks (R₀ = R₃ = 1)
}

// NewShape builds a Shape for a rows×dim table with both TT ranks set to
// rank. Row factors are chosen near the cube root of rows (padding up);
// column factors must divide dim exactly into three balanced factors.
func NewShape(rows, dim, rank int) (Shape, error) {
	return NewShapeRanks(rows, dim, rank, rank)
}

// NewShapeRanks is NewShape with independent ranks R₁ and R₂.
func NewShapeRanks(rows, dim, r1, r2 int) (Shape, error) {
	if rows <= 0 || dim <= 0 {
		return Shape{}, fmt.Errorf("tt: invalid table shape %dx%d", rows, dim)
	}
	if r1 <= 0 || r2 <= 0 {
		return Shape{}, fmt.Errorf("tt: invalid ranks %d, %d", r1, r2)
	}
	colF, err := exactFactors3(dim)
	if err != nil {
		return Shape{}, err
	}
	return Shape{
		Rows:       rows,
		Dim:        dim,
		RowFactors: paddedFactors3(rows),
		ColFactors: colF,
		R1:         r1,
		R2:         r2,
	}, nil
}

// NewShapeExplicit builds a Shape from explicit factors, validating them.
func NewShapeExplicit(rows, dim int, rowF, colF [Dims]int, r1, r2 int) (Shape, error) {
	prodR, prodC := 1, 1
	for k := 0; k < Dims; k++ {
		if rowF[k] <= 0 || colF[k] <= 0 {
			return Shape{}, fmt.Errorf("tt: non-positive factor in %v / %v", rowF, colF)
		}
		prodR *= rowF[k]
		prodC *= colF[k]
	}
	if prodR < rows {
		return Shape{}, fmt.Errorf("tt: row factors %v product %d < rows %d", rowF, prodR, rows)
	}
	if prodC != dim {
		return Shape{}, fmt.Errorf("tt: col factors %v product %d != dim %d", colF, prodC, dim)
	}
	if r1 <= 0 || r2 <= 0 {
		return Shape{}, fmt.Errorf("tt: invalid ranks %d, %d", r1, r2)
	}
	return Shape{Rows: rows, Dim: dim, RowFactors: rowF, ColFactors: colF, R1: r1, R2: r2}, nil
}

// PaddedRows returns m₁·m₂·m₃, the row capacity of the TT representation.
func (s Shape) PaddedRows() int {
	return s.RowFactors[0] * s.RowFactors[1] * s.RowFactors[2]
}

// FactorIndex splits a row index into its TT indices per Equation 3.
func (s Shape) FactorIndex(i int) (i1, i2, i3 int) {
	m2, m3 := s.RowFactors[1], s.RowFactors[2]
	return i / (m2 * m3), (i / m3) % m2, i % m3
}

// JoinIndex is the inverse of FactorIndex.
func (s Shape) JoinIndex(i1, i2, i3 int) int {
	return (i1*s.RowFactors[1]+i2)*s.RowFactors[2] + i3
}

// Prefix returns the reuse-buffer key of index i: the combined (i₁,i₂)
// coordinate, i.e. i / m₃ exactly as Algorithm 1 computes Buf_idx.
func (s Shape) Prefix(i int) int { return i / s.RowFactors[2] }

// NumPrefixes returns m₁·m₂, the size of the prefix space.
func (s Shape) NumPrefixes() int { return s.RowFactors[0] * s.RowFactors[1] }

// SliceSizes returns the float count of one slice of each core.
func (s Shape) SliceSizes() [Dims]int {
	n := s.ColFactors
	return [Dims]int{
		n[0] * s.R1,
		s.R1 * n[1] * s.R2,
		s.R2 * n[2],
	}
}

// PrefixSize returns the float count of one reuse-buffer entry
// (n₁ × n₂·R₂, the product of the first two cores).
func (s Shape) PrefixSize() int {
	return s.ColFactors[0] * s.ColFactors[1] * s.R2
}

// NumParams returns the total number of trainable floats across the cores.
func (s Shape) NumParams() int {
	sz := s.SliceSizes()
	total := 0
	for k := 0; k < Dims; k++ {
		total += s.RowFactors[k] * sz[k]
	}
	return total
}

// FootprintBytes returns the parameter storage size of the TT cores.
func (s Shape) FootprintBytes() int64 { return int64(s.NumParams()) * 4 }

// CompressionRatio returns (uncompressed bytes) / (TT bytes) for the
// logical table, the quantity Table III reports.
func (s Shape) CompressionRatio() float64 {
	raw := float64(s.Rows) * float64(s.Dim) * 4
	return raw / float64(s.FootprintBytes())
}

// Validate reports whether the shape is internally consistent.
func (s Shape) Validate() error {
	if s.Rows <= 0 || s.Dim <= 0 || s.R1 <= 0 || s.R2 <= 0 {
		return fmt.Errorf("tt: invalid shape %+v", s)
	}
	if s.PaddedRows() < s.Rows {
		return fmt.Errorf("tt: padded rows %d < rows %d", s.PaddedRows(), s.Rows)
	}
	prod := s.ColFactors[0] * s.ColFactors[1] * s.ColFactors[2]
	if prod != s.Dim {
		return fmt.Errorf("tt: col factors %v do not multiply to %d", s.ColFactors, s.Dim)
	}
	return nil
}

// String renders the factorization like the paper's notation.
func (s Shape) String() string {
	return fmt.Sprintf("TT[%d(=%dx%dx%d) x %d(=%dx%dx%d), R=(%d,%d)]",
		s.Rows, s.RowFactors[0], s.RowFactors[1], s.RowFactors[2],
		s.Dim, s.ColFactors[0], s.ColFactors[1], s.ColFactors[2], s.R1, s.R2)
}

// paddedFactors3 factorizes n into three near-equal factors whose product is
// at least n (rows may be padded).
func paddedFactors3(n int) [Dims]int {
	c := int(math.Ceil(math.Cbrt(float64(n))))
	if c < 1 {
		c = 1
	}
	m3 := c
	rest := ceilDiv(n, m3)
	m2 := int(math.Ceil(math.Sqrt(float64(rest))))
	if m2 < 1 {
		m2 = 1
	}
	m1 := ceilDiv(rest, m2)
	if m1 < 1 {
		m1 = 1
	}
	return [Dims]int{m1, m2, m3}
}

// exactFactors3 factorizes n into three factors with exact product, as
// balanced as possible, or errors when n has no such factorization
// (e.g. a large prime).
func exactFactors3(n int) ([Dims]int, error) {
	best := [Dims]int{}
	bestSpread := math.MaxInt64
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		rest := n / a
		for b := a; b*b <= rest; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			if spread := c - a; spread < bestSpread {
				bestSpread = spread
				best = [Dims]int{a, b, c}
			}
		}
	}
	if bestSpread == math.MaxInt64 {
		return best, fmt.Errorf("tt: dim %d has no 3-factor decomposition", n)
	}
	return best, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
