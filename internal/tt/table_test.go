package tt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// testShape returns a small awkward shape (padding, non-uniform factors).
func testShape(t *testing.T) Shape {
	t.Helper()
	s, err := NewShapeExplicit(95, 12, [Dims]int{4, 5, 5}, [Dims]int{2, 2, 3}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestTable(t *testing.T, seed uint64) *Table {
	tbl := NewTable(testShape(t), tensor.NewRNG(seed), 0.1)
	return tbl
}

// refLookup computes pooled embeddings from the materialized table.
func refLookup(mat *tensor.Matrix, indices, offsets []int) *tensor.Matrix {
	out := tensor.New(len(offsets), mat.Cols)
	for s := range offsets {
		lo := offsets[s]
		hi := len(indices)
		if s+1 < len(offsets) {
			hi = offsets[s+1]
		}
		for _, idx := range indices[lo:hi] {
			tensor.AddTo(out.Row(s), mat.Row(idx))
		}
	}
	return out
}

// randomBatch builds a random indices/offsets batch over [0,rows).
func randomBatch(r *tensor.RNG, rows, batchSize, maxBag int) (indices, offsets []int) {
	offsets = make([]int, batchSize)
	for s := 0; s < batchSize; s++ {
		offsets[s] = len(indices)
		k := 1 + r.Intn(maxBag)
		for i := 0; i < k; i++ {
			indices = append(indices, r.Intn(rows))
		}
	}
	return indices, offsets
}

func TestLookupRowMatchesMaterialize(t *testing.T) {
	tbl := newTestTable(t, 1)
	mat := tbl.Materialize()
	row := make([]float32, tbl.Dim())
	for _, i := range []int{0, 1, 47, 94} {
		tbl.LookupRow(i, row)
		for j := 0; j < tbl.Dim(); j++ {
			if math.Abs(float64(row[j]-mat.At(i, j))) > 1e-5 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, row[j], mat.At(i, j))
			}
		}
	}
}

func TestLookupRowValidation(t *testing.T) {
	tbl := newTestTable(t, 2)
	row := make([]float32, tbl.Dim())
	for _, bad := range []int{-1, 95, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LookupRow(%d) did not panic", bad)
				}
			}()
			tbl.LookupRow(bad, row)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LookupRow with short dst did not panic")
		}
	}()
	tbl.LookupRow(0, row[:2])
}

func TestForwardMatchesReferenceAllOptionCombos(t *testing.T) {
	r := tensor.NewRNG(3)
	for combo := 0; combo < 4; combo++ {
		tbl := newTestTable(t, 4)
		tbl.Opts.DedupIndices = combo&1 != 0
		tbl.Opts.ReusePrefix = combo&2 != 0
		mat := tbl.Materialize()
		indices, offsets := randomBatch(r, tbl.NumRows(), 16, 4)
		got, cache := tbl.Forward(indices, offsets)
		want := refLookup(mat, indices, offsets)
		if d := got.MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("combo %d deviates by %v", combo, d)
		}
		if cache == nil || cache.Rows == nil {
			t.Fatalf("combo %d produced nil cache", combo)
		}
		if tbl.Opts.ReusePrefix && cache.PrefixBuf == nil {
			t.Fatalf("combo %d should have a prefix buffer", combo)
		}
		if !tbl.Opts.ReusePrefix && cache.PrefixBuf != nil {
			t.Fatalf("combo %d should not have a prefix buffer", combo)
		}
	}
}

func TestForwardDedupComputesEachRowOnce(t *testing.T) {
	tbl := newTestTable(t, 5)
	indices := []int{7, 7, 7, 7, 3}
	offsets := []int{0, 2, 4}
	_, cache := tbl.Forward(indices, offsets)
	if len(cache.WorkIdx) != 2 {
		t.Fatalf("dedup left %d work items, want 2", len(cache.WorkIdx))
	}
}

func TestForwardPrefixBufferDedupsPrefixes(t *testing.T) {
	tbl := newTestTable(t, 6)
	m3 := tbl.Shape.RowFactors[2]
	// Indices sharing the same (i1,i2) prefix (consecutive within m3 block).
	indices := []int{0, 1, 2, m3, m3 + 1}
	offsets := []int{0}
	_, cache := tbl.Forward(indices, offsets)
	if cache.PrefixBuf.Rows != 2 {
		t.Fatalf("prefix buffer has %d rows, want 2", cache.PrefixBuf.Rows)
	}
}

func TestForwardMapPathForLargePrefixSpace(t *testing.T) {
	// Shape with a huge prefix space forces the hash-map dedup branch.
	s, err := NewShapeExplicit(100000, 8, [Dims]int{100, 100, 10}, [Dims]int{2, 2, 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s, tensor.NewRNG(7), 0.1)
	r := tensor.NewRNG(8)
	indices, offsets := randomBatch(r, s.Rows, 8, 3)
	got, _ := tbl.Forward(indices, offsets)
	want := make([]float32, s.Dim)
	row := make([]float32, s.Dim)
	// Reference via LookupRow (no full materialization at 100k rows).
	lo := offsets[1]
	zero(want)
	for _, idx := range indices[offsets[0]:lo] {
		tbl.LookupRow(idx, row)
		tensor.AddTo(want, row)
	}
	for j := range want {
		if math.Abs(float64(got.At(0, j)-want[j])) > 1e-4 {
			t.Fatalf("map-path sample 0 col %d: %v vs %v", j, got.At(0, j), want[j])
		}
	}
}

func TestForwardEmptyBagAndValidation(t *testing.T) {
	tbl := newTestTable(t, 9)
	out, _ := tbl.Forward([]int{5}, []int{0, 0}) // first bag empty
	for j := 0; j < tbl.Dim(); j++ {
		if out.At(0, j) != 0 {
			t.Fatal("empty bag must be zero")
		}
	}
	cases := []struct {
		name             string
		indices, offsets []int
	}{
		{"empty offsets", []int{1}, nil},
		{"bad first offset", []int{1}, []int{1}},
		{"decreasing", []int{1, 2}, []int{0, 2, 1}},
		{"index out of range", []int{95}, []int{0}},
		{"negative index", []int{-2}, []int{0}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", c.name)
				}
			}()
			tbl.Forward(c.indices, c.offsets)
		}()
	}
}

// Property: all four forward option combinations agree with each other on
// random batches and random shapes.
func TestQuickForwardOptionAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		rows := 10 + r.Intn(200)
		dims := []int{8, 12, 16, 27}
		dim := dims[r.Intn(len(dims))]
		s, err := NewShape(rows, dim, 1+r.Intn(5))
		if err != nil {
			return true // unfactorizable dim; skip
		}
		base := NewTable(s, tensor.NewRNG(seed+1), 0.1)
		indices, offsets := randomBatch(r, rows, 1+r.Intn(8), 3)
		ref, _ := base.Forward(indices, offsets)
		for combo := 0; combo < 3; combo++ {
			base.Opts.DedupIndices = combo&1 != 0
			base.Opts.ReusePrefix = combo&2 != 0
			got, _ := base.Forward(indices, offsets)
			if got.MaxAbsDiff(ref) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTableInitializationStd(t *testing.T) {
	s, err := NewShape(4000, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s, tensor.NewRNG(10), 0.05)
	mat := tbl.Materialize()
	var sum, sumsq float64
	for _, v := range mat.Data {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	n := float64(len(mat.Data))
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("materialized mean %v too large", mean)
	}
	// Within a factor ~3 of the target: the product-of-gaussians variance
	// estimate is approximate.
	if std < 0.05/3 || std > 0.05*3 {
		t.Fatalf("materialized std %v not near 0.05", std)
	}
}

func TestFootprintSmallerThanDense(t *testing.T) {
	s, err := NewShape(100000, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s, tensor.NewRNG(11), 0)
	dense := int64(100000) * 64 * 4
	if tbl.FootprintBytes() >= dense/10 {
		t.Fatalf("TT footprint %d not ≪ dense %d", tbl.FootprintBytes(), dense)
	}
	if tbl.NumRows() != 100000 || tbl.Dim() != 64 {
		t.Fatal("accessor mismatch")
	}
}

func TestLookupUpdateInterface(t *testing.T) {
	tbl := newTestTable(t, 12)
	tbl.Deterministic = true
	indices, offsets := []int{1, 2, 3}, []int{0, 1}
	out := tbl.Lookup(indices, offsets)
	before := tbl.Materialize()
	dOut := tensor.New(out.Rows, out.Cols)
	for i := range dOut.Data {
		dOut.Data[i] = 0.1
	}
	tbl.Update(indices, offsets, dOut, 0.01)
	after := tbl.Materialize()
	if before.MaxAbsDiff(after) == 0 {
		t.Fatal("Update changed nothing")
	}
	// Update without a matching Lookup must still work (fresh forward).
	tbl.Update([]int{4}, []int{0}, tensor.New(1, tbl.Dim()), 0.01)
}

func TestLookupRowPaddedBoundary(t *testing.T) {
	// The last logical row sits inside the padded index space; rows beyond
	// Rows are rejected even though the TT representation could address
	// them.
	s, err := NewShapeExplicit(97, 8, [Dims]int{4, 5, 5}, [Dims]int{2, 2, 2}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s, tensor.NewRNG(50), 0.1)
	row := make([]float32, 8)
	tbl.LookupRow(96, row) // last valid row
	defer func() {
		if recover() == nil {
			t.Fatal("padded-region index accepted")
		}
	}()
	tbl.LookupRow(97, row)
}

// Property: backward with random option combinations keeps cores finite and
// panics never; unfused aggregated updates match across forward variants.
func TestQuickBackwardOptionAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		rows := 20 + r.Intn(100)
		s, err := NewShape(rows, 8, 1+r.Intn(4))
		if err != nil {
			return true
		}
		indices, offsets := randomBatch(r, rows, 1+r.Intn(6), 3)
		dOut := tensor.New(len(offsets), 8)
		r.FillUniform(dOut.Data, 1)

		run := func(dedup, reuse bool) *Table {
			tbl := NewTable(s, tensor.NewRNG(seed+99), 0.1)
			tbl.Deterministic = true
			tbl.Opts = Options{DedupIndices: dedup, ReusePrefix: reuse, InAdvanceAgg: true, FusedUpdate: false}
			_, cache := tbl.Forward(indices, offsets)
			tbl.Backward(cache, dOut, 0.05)
			return tbl
		}
		ref := run(true, true)
		for _, combo := range [][2]bool{{true, false}, {false, true}, {false, false}} {
			got := run(combo[0], combo[1])
			for k := 0; k < Dims; k++ {
				if got.Cores[k].MaxAbsDiff(ref.Cores[k]) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
