package tt

// CloneForServing returns a read-path replica of the table for concurrent
// inference: the clone shares t's core matrices (the compressed parameters,
// treated as immutable while serving) and owns every piece of mutable
// lookup state — arena ForwardCache, cross-batch prefix cache, core-version
// counters, stripe locks and metric hooks start fresh and lazily. Distinct
// clones therefore never touch shared mutable memory on Lookup, so each
// serving replica can score concurrently with the others.
//
// The sharing contract is read-only: while any clone is serving, neither t
// nor any clone may run Update/Backward (or any other core mutation) —
// a weight write would race with the clones' reads. Training a new model
// version and re-cloning is the supported update path.
func (t *Table) CloneForServing() *Table {
	return &Table{
		Shape:         t.Shape,
		Opts:          t.Opts,
		Deterministic: t.Deterministic,
		// Array assignment copies the three matrix pointers: cores are
		// shared storage, everything else (arena, pcache, grads, locks,
		// versions, metrics) stays zero and is allocated per clone on
		// first use.
		Cores: t.Cores,
	}
}
