package tt

import "repro/internal/tensor"

// This file implements the cross-batch extension of Algorithm 1's reuse
// buffer: instead of recomputing every unique prefix product G₁[i₁]·G₂[i₂]
// each batch, products persist in a table-owned cache and are reused as
// long as the core slices they were computed from are unchanged.
//
// Correctness rests on versioning, not on invalidation callbacks: every row
// of cores G₁ and G₂ carries a version counter (Table.coreVer) bumped by
// whichever update path mutates it — the fused backward kernel bumps the
// touched rows, the unfused optimizer sweep bumps all of them. A cached
// product is valid iff the versions of *both* source slices still equal the
// versions captured when it was filled; a hit therefore returns bytes
// computed by the same kernel from identical inputs, which is bit-exact
// with recomputing.
//
// The cache is only consulted on the arena (Lookup/Update) path, which the
// Table protocol serializes, so no locking is needed here; the concurrent
// Forward path keeps its batch-local buffer. Deterministic tables bypass
// the cache entirely so their execution matches the documented
// single-threaded recompute exactly.

// prefixCacheBudgetBytes is the soft cap on cached product storage; beyond
// it the cache recycles slots not used by the current batch instead of
// growing. A batch whose unique prefixes alone exceed the budget still
// grows (every slot of the current batch must be live simultaneously).
const prefixCacheBudgetBytes = 16 << 20

// prefixDenseCap bounds the dense prefix→slot array (one int32 per possible
// prefix). Prefix counts grow like rows^(2/3), so this covers every
// realistic table; beyond it the persistent cache is disabled.
const prefixDenseCap = 1 << 22

// prefixCache is the persistent reuse buffer. Slot arrays (key, v1, v2,
// lastUse) and buf rows grow together; slotOf maps a prefix to its slot or
// -1. Serialized by the Table protocol (see //elrec:locked notes on users).
type prefixCache struct {
	slotOf  []int32 // prefix → slot, -1 when absent
	key     []int   // slot → prefix
	v1, v2  []uint64
	lastUse []int64 // slot → last batch seq that touched it
	buf     *tensor.Matrix
	seq     int64
	cursor  int // eviction scan position
}

// prefixCacheFor returns the table's persistent prefix cache when the call
// may use it: arena caches only (the serialized path), never in
// Deterministic mode, and only while the dense prefix map stays affordable.
//
//elrec:coldpath allocates only on first construction; steady state returns the existing cache
func (t *Table) prefixCacheFor(c *ForwardCache) *prefixCache {
	if !c.arena || t.Deterministic || t.Shape.NumPrefixes() > prefixDenseCap {
		return nil
	}
	if t.pcache == nil {
		pc := &prefixCache{
			slotOf: make([]int32, t.Shape.NumPrefixes()),
			buf:    tensor.New(64, t.Shape.PrefixSize()),
		}
		for i := range pc.slotOf {
			pc.slotOf[i] = -1
		}
		t.pcache = pc
		t.ensureCoreVersions()
	}
	return t.pcache
}

// fillFromPrefixCache resolves every work item's prefix against the
// persistent cache. Valid entries are hits; stale or absent entries are
// recorded as misses, assigned slots, and recomputed by one batched GEMM
// after the scan (slot storage may grow during the scan, so row pointers
// are only taken once the scan is done).
func (t *Table) fillFromPrefixCache(c *ForwardCache, pc *prefixCache) {
	pc.seq++
	c.prefixes = c.prefixes[:0] // slots to recompute this batch
	hits := 0
	m2 := t.Shape.RowFactors[1]
	budget := prefixCacheBudgetBytes / (4 * t.Shape.PrefixSize())
	if budget < 64 {
		budget = 64
	}
	// One snapshot per batch: ProtectPrefixes publishes immutable bitmaps,
	// so the scan sees a consistent protection set even while the
	// pre-fetcher advances to the next window.
	prot := t.protected.Load()
	for w, idx := range c.WorkIdx {
		pfx := t.Shape.Prefix(idx)
		s := pc.slotOf[pfx]
		if s >= 0 && pc.lastUse[s] == pc.seq {
			// Prefix already resolved this batch (as a hit or queued miss).
			c.PrefixSlots[w] = int(s)
			continue
		}
		i1, i2 := pfx/m2, pfx%m2
		if s >= 0 {
			pc.lastUse[s] = pc.seq
			if pc.v1[s] == t.coreVer[0][i1] && pc.v2[s] == t.coreVer[1][i2] {
				hits++
				c.PrefixSlots[w] = int(s)
				continue
			}
		} else {
			s = pc.claimSlot(budget, prot)
			pc.slotOf[pfx] = s
			pc.key[s] = pfx
			pc.lastUse[s] = pc.seq
		}
		// Miss: capture source versions now (the scan is serialized with
		// every core mutation) and queue the slot for recompute.
		pc.v1[s] = t.coreVer[0][i1]
		pc.v2[s] = t.coreVer[1][i2]
		//elrec:coldpath amortized: the miss list keeps its capacity across batches
		c.prefixes = append(c.prefixes, int(s))
		c.PrefixSlots[w] = int(s)
	}

	if len(c.prefixes) > 0 {
		if cap(c.batch) < len(c.prefixes) {
			//elrec:coldpath amortized batched-GEMM descriptor growth
			c.batch = make([]tensor.GemmBatch, len(c.prefixes))
		}
		c.batch = c.batch[:len(c.prefixes)]
		for i, s := range c.prefixes {
			pfx := pc.key[s]
			i1, i2 := pfx/m2, pfx%m2
			c.batch[i] = tensor.GemmBatch{A: t.Slice1(i1), B: t.Slice2(i2), C: pc.buf.Row(s)}
		}
		n := t.Shape.ColFactors
		tensor.BatchedMatMul(n[0], t.Shape.R1, n[1]*t.Shape.R2, c.batch)
	}
	c.PrefixBuf = pc.buf
	t.met.recordPrefix(len(c.WorkIdx), len(c.prefixes))
	t.met.recordPrefixCache(hits, len(c.prefixes))
}

// claimSlot returns a free slot index: a fresh one while under budget, an
// evicted slot (round-robin over slots idle this batch) when at budget, or
// growth past budget when every slot is live in the current batch. Slots
// whose prefix is in the lookahead protection set prot are skipped by the
// eviction scan — their rows recur in the planned window, so recycling them
// would trade a certain future hit for an uncertain one; when every idle
// slot is protected the cache grows instead.
//
//elrec:coldpath miss-path slot bookkeeping; growth is amortized by the budget and a stable working set stops missing
func (pc *prefixCache) claimSlot(budget int, prot *protectedPrefixes) int32 {
	if len(pc.key) >= budget {
		n := len(pc.key)
		for i := 0; i < n; i++ {
			s := pc.cursor
			pc.cursor++
			if pc.cursor == n {
				pc.cursor = 0
			}
			if pc.lastUse[s] != pc.seq && !prot.has(pc.key[s]) {
				pc.slotOf[pc.key[s]] = -1
				return int32(s)
			}
		}
	}
	s := len(pc.key)
	if s >= pc.buf.Rows {
		pc.growBuf()
	}
	pc.key = append(pc.key, 0)
	pc.v1 = append(pc.v1, 0)
	pc.v2 = append(pc.v2, 0)
	pc.lastUse = append(pc.lastUse, 0)
	return int32(s)
}

// growBuf doubles the product storage, preserving cached rows byte-for-byte
// (hits must stay bit-exact across growth). Growth only happens inside the
// scan phase, before any row pointers are taken for the batched GEMM.
func (pc *prefixCache) growBuf() {
	nm := tensor.New(2*pc.buf.Rows, pc.buf.Cols)
	copy(nm.Data, pc.buf.Data)
	pc.buf = nm
}

// InvalidatePrefixCache drops every cached prefix product. The versioned
// cache detects optimizer updates on its own; call this after mutating
// Cores storage directly (checkpoint restore, test surgery on core data).
func (t *Table) InvalidatePrefixCache() {
	pc := t.pcache
	if pc == nil {
		return
	}
	for i := range pc.slotOf {
		pc.slotOf[i] = -1
	}
	pc.key = pc.key[:0]
	pc.v1 = pc.v1[:0]
	pc.v2 = pc.v2[:0]
	pc.lastUse = pc.lastUse[:0]
	pc.cursor = 0
}

// ensureCoreVersions allocates the per-row version counters of the first
// two cores (the prefix sources). Versions start at zero; every mutation
// path bumps them (applyGradSlice under the row's stripe lock, the unfused
// sweep wholesale).
func (t *Table) ensureCoreVersions() {
	for k := 0; k < 2; k++ {
		if t.coreVer[k] == nil {
			t.coreVer[k] = make([]uint64, t.Shape.RowFactors[k])
		}
	}
}

// protectedPrefixes is an immutable bitmap over the prefix space marking
// slots the eviction scan must skip. Instances are never mutated after
// publication (ProtectPrefixes builds a fresh one per window), so readers
// holding an old snapshot stay consistent.
type protectedPrefixes struct {
	bits []uint64
}

// has reports whether prefix pfx is protected (false on a nil set).
func (p *protectedPrefixes) has(pfx int) bool {
	if p == nil {
		return false
	}
	return p.bits[pfx>>6]&(1<<(uint(pfx)&63)) != 0
}

// ProtectPrefixes installs the lookahead protection set: the TT prefixes of
// ids (logical row ids) are shielded from prefix-cache slot recycling until
// the next call. The pipeline's pre-fetcher calls this once per window with
// the rows that recur within it; nil or empty ids clears the set. Safe to
// call concurrently with lookups: the bitmap is immutable once published
// and readers snapshot it per batch. On tables whose prefix space exceeds
// the dense cache cap the call is a no-op (there is no cache to protect).
func (t *Table) ProtectPrefixes(ids []int) {
	if t.Shape.NumPrefixes() > prefixDenseCap {
		return
	}
	if len(ids) == 0 {
		t.protected.Store(nil)
		return
	}
	p := &protectedPrefixes{bits: make([]uint64, (t.Shape.NumPrefixes()+63)/64)}
	for _, id := range ids {
		pfx := t.Shape.Prefix(id)
		p.bits[pfx>>6] |= 1 << (uint(pfx) & 63)
	}
	t.protected.Store(p)
}

// bumpAllCoreVersions invalidates every cached prefix by advancing all
// source-slice versions; the unfused optimizer sweep rewrites both cores
// wholesale, so per-row tracking has nothing to save.
func (t *Table) bumpAllCoreVersions() {
	for k := 0; k < 2; k++ {
		for i := range t.coreVer[k] {
			t.coreVer[k][i]++
		}
	}
}
