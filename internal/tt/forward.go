package tt

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// ForwardCache carries the intermediates of one Forward call into the
// matching Backward call: the batch description, the unique-index structure
// (when deduplication ran), and the reuse buffer of first-two-core products
// (when prefix reuse ran). A table-owned arena cache (the Lookup/Update
// path) additionally keeps every scratch buffer alive across batches so
// steady-state training steps allocate nothing.
type ForwardCache struct {
	Indices []int
	Offsets []int

	// WorkIdx[w] is the embedding index of work item w; WorkOf[p] maps
	// occurrence p to its work item. With deduplication WorkIdx is the
	// unique index list; without it WorkIdx aliases Indices and WorkOf is
	// nil, meaning the identity mapping (occurrence p is work item p).
	WorkIdx []int
	WorkOf  []int

	// PrefixSlots[w] is the reuse-buffer row of work item w; PrefixBuf row
	// s holds the n₁×(n₂R₂) product for that prefix. Nil when prefix reuse
	// is disabled. On the arena path PrefixBuf aliases the table's
	// persistent versioned cache.
	PrefixSlots []int
	PrefixBuf   *tensor.Matrix

	// Rows holds the materialized embedding row of each work item
	// (len(WorkIdx) × Dim).
	Rows *tensor.Matrix

	// arena marks a table-owned cache reused across batches. Fresh caches
	// (the concurrent-safe Forward path) leave every scratch field nil and
	// simply allocate.
	arena bool

	// seq stamps the dense dedup scratch below: an entry equals seq iff it
	// was written during the current batch, so the arrays never need a
	// per-batch reset (or reallocation) once grown.
	seq      int64
	rowStamp []int64 // rowStamp[idx] == seq: idx already has a work item
	rowSlot  []int32 // its work-item position when stamped
	pfxStamp []int64 // same scheme over prefixes (batch-local buffer path)
	pfxSlot  []int32

	workIdxBuf []int
	workOfBuf  []int
	slotsBuf   []int // backward rebuild: slot per rebuilt work item
	bwSlots    []int // non-nil when slotsBuf is valid for this backward
	prefixes   []int
	batch      []tensor.GemmBatch
	out        *tensor.Matrix
	p12        []float32 // serial-path prefix recompute scratch
	workGrad   *tensor.Matrix
	bw         bwScratch
}

// growInts returns buf resized to n, reusing its storage when it fits.
//
//elrec:coldpath amortized scratch growth; steady state reslices in place
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growFloats returns buf resized to n, reusing its storage when it fits.
//
//elrec:coldpath amortized scratch growth; steady state reslices in place
func growFloats(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// rowDenseCap bounds the dense index-dedup scratch: two words per logical
// row. Larger tables fall back to the allocating map-based dedup.
const rowDenseCap = 1 << 22

// validateBatch panics when a batch description is malformed, mirroring
// embedding.Bag's validation.
func (t *Table) validateBatch(indices, offsets []int) {
	if len(offsets) == 0 {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic("tt: empty offsets")
	}
	if offsets[0] != 0 {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic(fmt.Sprintf("tt: offsets[0] = %d want 0", offsets[0]))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
			panic(fmt.Sprintf("tt: offsets not monotone at %d", i))
		}
	}
	if offsets[len(offsets)-1] > len(indices) {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic(fmt.Sprintf("tt: last offset %d exceeds %d indices", offsets[len(offsets)-1], len(indices)))
	}
	for p, idx := range indices {
		if idx < 0 || idx >= t.Shape.Rows {
			//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
			panic(fmt.Sprintf("tt: index %d at position %d out of [0,%d)", idx, p, t.Shape.Rows))
		}
	}
}

// Forward computes the sum-pooled embeddings of a batch (batch×Dim) and the
// cache consumed by Backward. The executed path follows t.Opts: with
// DedupIndices each unique row is computed once; with ReusePrefix the
// products of the first two cores are computed once per unique prefix via a
// single batched GEMM over prepared pointer lists (Algorithm 1).
//
// Forward is safe for concurrent use: every call gets a fresh cache. The
// serialized Lookup/Update path reuses a table-owned cache instead (see
// Lookup) and additionally hits the cross-batch prefix cache.
func (t *Table) Forward(indices, offsets []int) (*tensor.Matrix, *ForwardCache) {
	c := &ForwardCache{} //elrec:coldpath fresh cache per call is Forward's contract; the hot path is Lookup's arena
	out := t.forwardInto(c, indices, offsets)
	return out, c
}

// forwardInto runs the forward pass through c, reusing c's scratch when it
// is an arena cache.
func (t *Table) forwardInto(c *ForwardCache, indices, offsets []int) *tensor.Matrix {
	t.validateBatch(indices, offsets)
	c.Indices, c.Offsets = indices, offsets
	c.seq++

	if t.Opts.DedupIndices {
		t.dedupRows(c)
	} else {
		c.WorkIdx = indices
		c.WorkOf = nil
	}
	t.met.recordForward(len(indices), len(c.WorkIdx))

	if t.Opts.ReusePrefix {
		t.fillPrefixBuffer(c)
	} else {
		c.PrefixSlots, c.PrefixBuf = nil, nil
	}

	// Materialize one row per work item.
	c.Rows = tensor.Reuse(c.Rows, len(c.WorkIdx), t.Shape.Dim)
	prefixScratchSize := 0
	if c.PrefixBuf == nil {
		prefixScratchSize = t.Shape.PrefixSize()
	}
	if t.serialItems() {
		c.p12 = growFloats(c.p12, prefixScratchSize)
		t.materializeRows(c, c.p12, 0, len(c.WorkIdx))
	} else {
		tensor.ParallelFor(len(c.WorkIdx), func(lo, hi int) {
			var scratch []float32
			if prefixScratchSize > 0 {
				//elrec:coldpath per-chunk prefix scratch only when ReusePrefix is off
				scratch = make([]float32, prefixScratchSize)
			}
			t.materializeRows(c, scratch, lo, hi)
		})
	}

	// Pool work-item rows into per-sample embeddings.
	c.out = tensor.Reuse(c.out, len(offsets), t.Shape.Dim)
	c.out.Zero()
	if t.serialItems() {
		t.poolRows(c, c.out, 0, len(offsets))
	} else {
		tensor.ParallelFor(len(offsets), func(lo, hi int) {
			t.poolRows(c, c.out, lo, hi)
		})
	}
	return c.out
}

// serialItems reports whether per-item loops should run inline: forced by
// Deterministic mode, and chosen whenever the worker pool is down to one
// executor so the hot path skips closure and dispatch costs entirely.
func (t *Table) serialItems() bool {
	return t.Deterministic || tensor.Workers() <= 1
}

// materializeRows computes embedding rows for work items [lo,hi). scratch
// holds one prefix product when no reuse buffer is available.
func (t *Table) materializeRows(c *ForwardCache, scratch []float32, lo, hi int) {
	for w := lo; w < hi; w++ {
		i1, i2, i3 := t.Shape.FactorIndex(c.WorkIdx[w])
		p12 := scratch
		if c.PrefixBuf != nil {
			p12 = c.PrefixBuf.Row(c.PrefixSlots[w])
		} else {
			t.computePrefix(i1, i2, p12)
		}
		t.rowFromPrefix(p12, i3, c.Rows.Row(w))
	}
}

// poolRows sum-pools work-item rows into samples [lo,hi) of out.
func (t *Table) poolRows(c *ForwardCache, out *tensor.Matrix, lo, hi int) {
	for s := lo; s < hi; s++ {
		start := c.Offsets[s]
		end := len(c.Indices)
		if s+1 < len(c.Offsets) {
			end = c.Offsets[s+1]
		}
		row := out.Row(s)
		if c.WorkOf == nil {
			for p := start; p < end; p++ {
				tensor.AddTo(row, c.Rows.Row(p))
			}
		} else {
			for p := start; p < end; p++ {
				tensor.AddTo(row, c.Rows.Row(c.WorkOf[p]))
			}
		}
	}
}

// dedupRows builds the unique work-item list for the batch. Arena caches on
// tables up to rowDenseCap rows use the stamped dense scratch — no per-batch
// allocation or O(rows) reset; everything else falls back to the allocating
// embedding.Unique.
func (t *Table) dedupRows(c *ForwardCache) {
	if !c.arena || t.Shape.Rows > rowDenseCap {
		//elrec:coldpath allocating map dedup: fresh caches and beyond-cap tables only
		c.WorkIdx, c.WorkOf = embedding.Unique(c.Indices)
		return
	}
	if len(c.rowStamp) < t.Shape.Rows {
		//elrec:coldpath one-time stamp scratch sized to the table
		c.rowStamp = make([]int64, t.Shape.Rows)
		//elrec:coldpath one-time stamp scratch sized to the table
		c.rowSlot = make([]int32, t.Shape.Rows)
	}
	c.workIdxBuf = c.workIdxBuf[:0]
	c.workOfBuf = growInts(c.workOfBuf, len(c.Indices))
	for p, idx := range c.Indices {
		if c.rowStamp[idx] != c.seq {
			c.rowStamp[idx] = c.seq
			c.rowSlot[idx] = int32(len(c.workIdxBuf))
			//elrec:coldpath amortized: the work-item buffer keeps its capacity across batches
			c.workIdxBuf = append(c.workIdxBuf, idx)
		}
		c.workOfBuf[p] = int(c.rowSlot[idx])
	}
	c.WorkIdx, c.WorkOf = c.workIdxBuf, c.workOfBuf
}

// fillPrefixBuffer deduplicates the prefixes of the work items, prepares the
// batched-GEMM pointer lists (Ptr_a/Ptr_b/Ptr_c in Algorithm 1), and runs
// one batched GEMM to populate the reuse buffer. The arena path persists
// products across batches through the table's versioned prefix cache; the
// batch-local path (fresh caches, Deterministic mode) recomputes every
// unique prefix of the batch.
func (t *Table) fillPrefixBuffer(c *ForwardCache) {
	c.PrefixSlots = growInts(c.PrefixSlots, len(c.WorkIdx))
	if pc := t.prefixCacheFor(c); pc != nil {
		t.fillFromPrefixCache(c, pc)
		return
	}
	t.fillPrefixBatchLocal(c)
}

// fillPrefixBatchLocal recomputes every unique prefix of the batch into the
// batch-local reuse buffer — the path taken by fresh caches and
// Deterministic tables, which never touch the persistent cache.
//
//elrec:coldpath batch-local recompute: fresh caches and Deterministic mode; the training hot path uses the versioned cache
func (t *Table) fillPrefixBatchLocal(c *ForwardCache) {
	c.prefixes = c.prefixes[:0]
	if np := t.Shape.NumPrefixes(); np <= 4*len(c.WorkIdx)+1024 || (c.arena && np <= prefixDenseCap) {
		// Dense stamped slot map (Algorithm 1's Buf_flag): arena caches
		// keep it across batches, so neither reallocation nor the O(np)
		// reset recurs.
		if len(c.pfxStamp) < np {
			c.pfxStamp = make([]int64, np)
			c.pfxSlot = make([]int32, np)
		}
		for w, idx := range c.WorkIdx {
			pfx := t.Shape.Prefix(idx)
			if c.pfxStamp[pfx] != c.seq {
				c.pfxStamp[pfx] = c.seq
				c.pfxSlot[pfx] = int32(len(c.prefixes))
				c.prefixes = append(c.prefixes, pfx)
			}
			c.PrefixSlots[w] = int(c.pfxSlot[pfx])
		}
	} else {
		slotOf := make(map[int]int, len(c.WorkIdx))
		for w, idx := range c.WorkIdx {
			pfx := t.Shape.Prefix(idx)
			slot, ok := slotOf[pfx]
			if !ok {
				slot = len(c.prefixes)
				slotOf[pfx] = slot
				c.prefixes = append(c.prefixes, pfx)
			}
			c.PrefixSlots[w] = slot
		}
	}

	c.PrefixBuf = tensor.Reuse(c.PrefixBuf, len(c.prefixes), t.Shape.PrefixSize())
	if cap(c.batch) < len(c.prefixes) {
		c.batch = make([]tensor.GemmBatch, len(c.prefixes))
	}
	c.batch = c.batch[:len(c.prefixes)]
	m2 := t.Shape.RowFactors[1]
	for s, pfx := range c.prefixes {
		i1, i2 := pfx/m2, pfx%m2
		c.batch[s] = tensor.GemmBatch{A: t.Slice1(i1), B: t.Slice2(i2), C: c.PrefixBuf.Row(s)}
	}
	n := t.Shape.ColFactors
	tensor.BatchedMatMul(n[0], t.Shape.R1, n[1]*t.Shape.R2, c.batch)
	t.met.recordPrefix(len(c.WorkIdx), len(c.prefixes))
}
