package tt

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// ForwardCache carries the intermediates of one Forward call into the
// matching Backward call: the batch description, the unique-index structure
// (when deduplication ran), and the reuse buffer of first-two-core products
// (when prefix reuse ran).
type ForwardCache struct {
	Indices []int
	Offsets []int

	// WorkIdx[w] is the embedding index of work item w; WorkOf[p] maps
	// occurrence p to its work item. With deduplication WorkIdx is the
	// unique index list, otherwise it is a copy of Indices and WorkOf is
	// the identity.
	WorkIdx []int
	WorkOf  []int

	// PrefixSlots[w] is the reuse-buffer row of work item w; PrefixBuf row
	// s holds the n₁×(n₂R₂) product for that prefix. Nil when prefix reuse
	// is disabled.
	PrefixSlots []int
	PrefixBuf   *tensor.Matrix

	// Rows holds the materialized embedding row of each work item
	// (len(WorkIdx) × Dim).
	Rows *tensor.Matrix
}

// validateBatch panics when a batch description is malformed, mirroring
// embedding.Bag's validation.
func (t *Table) validateBatch(indices, offsets []int) {
	if len(offsets) == 0 {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic("tt: empty offsets")
	}
	if offsets[0] != 0 {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic(fmt.Sprintf("tt: offsets[0] = %d want 0", offsets[0]))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
			panic(fmt.Sprintf("tt: offsets not monotone at %d", i))
		}
	}
	if offsets[len(offsets)-1] > len(indices) {
		//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
		panic(fmt.Sprintf("tt: last offset %d exceeds %d indices", offsets[len(offsets)-1], len(indices)))
	}
	for p, idx := range indices {
		if idx < 0 || idx >= t.Shape.Rows {
			//elrec:invariant bag layout contract: offsets and indices are validated by the data layer
			panic(fmt.Sprintf("tt: index %d at position %d out of [0,%d)", idx, p, t.Shape.Rows))
		}
	}
}

// Forward computes the sum-pooled embeddings of a batch (batch×Dim) and the
// cache consumed by Backward. The executed path follows t.Opts: with
// DedupIndices each unique row is computed once; with ReusePrefix the
// products of the first two cores are computed once per unique prefix via a
// single batched GEMM over prepared pointer lists (Algorithm 1).
func (t *Table) Forward(indices, offsets []int) (*tensor.Matrix, *ForwardCache) {
	t.validateBatch(indices, offsets)
	c := &ForwardCache{Indices: indices, Offsets: offsets}

	if t.Opts.DedupIndices {
		c.WorkIdx, c.WorkOf = embedding.Unique(indices)
	} else {
		c.WorkIdx = indices
		c.WorkOf = make([]int, len(indices))
		for p := range indices {
			c.WorkOf[p] = p
		}
	}
	t.met.recordForward(len(indices), len(c.WorkIdx))

	if t.Opts.ReusePrefix {
		t.fillPrefixBuffer(c)
	}

	// Materialize one row per work item.
	c.Rows = tensor.New(len(c.WorkIdx), t.Shape.Dim)
	prefixScratchSize := 0
	if c.PrefixBuf == nil {
		prefixScratchSize = t.Shape.PrefixSize()
	}
	t.parallelItems(len(c.WorkIdx), func(lo, hi int) {
		var scratch []float32
		if prefixScratchSize > 0 {
			scratch = make([]float32, prefixScratchSize)
		}
		for w := lo; w < hi; w++ {
			i1, i2, i3 := t.Shape.FactorIndex(c.WorkIdx[w])
			p12 := scratch
			if c.PrefixBuf != nil {
				p12 = c.PrefixBuf.Row(c.PrefixSlots[w])
			} else {
				t.computePrefix(i1, i2, p12)
			}
			t.rowFromPrefix(p12, i3, c.Rows.Row(w))
		}
	})

	// Pool work-item rows into per-sample embeddings.
	out := tensor.New(len(offsets), t.Shape.Dim)
	t.parallelItems(len(offsets), func(lo, hi int) {
		for s := lo; s < hi; s++ {
			start := offsets[s]
			end := len(indices)
			if s+1 < len(offsets) {
				end = offsets[s+1]
			}
			row := out.Row(s)
			for p := start; p < end; p++ {
				tensor.AddTo(row, c.Rows.Row(c.WorkOf[p]))
			}
		}
	})
	return out, c
}

// fillPrefixBuffer deduplicates the prefixes of the work items, prepares the
// batched-GEMM pointer lists (Ptr_a/Ptr_b/Ptr_c in Algorithm 1), and runs
// one batched GEMM to populate the reuse buffer. A dense slot map plays the
// role of Algorithm 1's Buf_flag when the prefix space is small; otherwise a
// hash map deduplicates.
func (t *Table) fillPrefixBuffer(c *ForwardCache) {
	c.PrefixSlots = make([]int, len(c.WorkIdx))
	var prefixes []int

	if np := t.Shape.NumPrefixes(); np <= 4*len(c.WorkIdx)+1024 {
		slotOf := make([]int32, np)
		for i := range slotOf {
			slotOf[i] = -1
		}
		for w, idx := range c.WorkIdx {
			pfx := t.Shape.Prefix(idx)
			if slotOf[pfx] < 0 {
				slotOf[pfx] = int32(len(prefixes))
				prefixes = append(prefixes, pfx)
			}
			c.PrefixSlots[w] = int(slotOf[pfx])
		}
	} else {
		slotOf := make(map[int]int, len(c.WorkIdx))
		for w, idx := range c.WorkIdx {
			pfx := t.Shape.Prefix(idx)
			slot, ok := slotOf[pfx]
			if !ok {
				slot = len(prefixes)
				slotOf[pfx] = slot
				prefixes = append(prefixes, pfx)
			}
			c.PrefixSlots[w] = slot
		}
	}

	c.PrefixBuf = tensor.New(len(prefixes), t.Shape.PrefixSize())
	batch := make([]tensor.GemmBatch, len(prefixes))
	m2 := t.Shape.RowFactors[1]
	for s, pfx := range prefixes {
		i1, i2 := pfx/m2, pfx%m2
		batch[s] = tensor.GemmBatch{A: t.Slice1(i1), B: t.Slice2(i2), C: c.PrefixBuf.Row(s)}
	}
	n := t.Shape.ColFactors
	tensor.BatchedMatMul(n[0], t.Shape.R1, n[1]*t.Shape.R2, batch)
	t.met.recordPrefix(len(c.WorkIdx), len(prefixes))
}

// parallelItems runs body over [0,n) in parallel unless the table is in
// deterministic mode.
func (t *Table) parallelItems(n int, body func(lo, hi int)) {
	if t.Deterministic {
		if n > 0 {
			body(0, n)
		}
		return
	}
	tensor.ParallelFor(n, body)
}
