package tt

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestNewShapeBasic(t *testing.T) {
	s, err := NewShape(1000, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.PaddedRows() < 1000 {
		t.Fatalf("padded rows %d < 1000", s.PaddedRows())
	}
	prod := s.ColFactors[0] * s.ColFactors[1] * s.ColFactors[2]
	if prod != 16 {
		t.Fatalf("col factors %v product %d", s.ColFactors, prod)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewShapeErrors(t *testing.T) {
	if _, err := NewShape(0, 16, 8); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if _, err := NewShape(10, 16, 0); err == nil {
		t.Fatal("rank=0 accepted")
	}
	if _, err := NewShape(-5, 16, 4); err == nil {
		t.Fatal("negative rows accepted")
	}
}

func TestNewShapeExplicitValidation(t *testing.T) {
	if _, err := NewShapeExplicit(100, 8, [Dims]int{4, 5, 5}, [Dims]int{2, 2, 2}, 4, 4); err != nil {
		t.Fatalf("valid explicit shape rejected: %v", err)
	}
	if _, err := NewShapeExplicit(101, 8, [Dims]int{4, 5, 5}, [Dims]int{2, 2, 2}, 4, 4); err == nil {
		t.Fatal("row factors below rows accepted")
	}
	if _, err := NewShapeExplicit(100, 8, [Dims]int{4, 5, 5}, [Dims]int{2, 2, 3}, 4, 4); err == nil {
		t.Fatal("col factors not multiplying to dim accepted")
	}
	if _, err := NewShapeExplicit(100, 8, [Dims]int{4, 5, 5}, [Dims]int{2, 2, 2}, 0, 4); err == nil {
		t.Fatal("zero rank accepted")
	}
	if _, err := NewShapeExplicit(100, 8, [Dims]int{4, -5, 5}, [Dims]int{2, 2, 2}, 4, 4); err == nil {
		t.Fatal("negative factor accepted")
	}
}

func TestExactFactors3Balanced(t *testing.T) {
	cases := map[int][Dims]int{
		8:   {2, 2, 2},
		64:  {4, 4, 4},
		128: {4, 4, 8},
	}
	for n, want := range cases {
		got, err := exactFactors3(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("exactFactors3(%d) = %v want %v", n, got, want)
		}
	}
	// Primes fall back to 1×1×p.
	got, err := exactFactors3(7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0]*got[1]*got[2] != 7 {
		t.Fatalf("exactFactors3(7) = %v", got)
	}
}

func TestFactorIndexRoundTrip(t *testing.T) {
	s, _ := NewShape(5000, 8, 4)
	for _, i := range []int{0, 1, 999, 4999, s.PaddedRows() - 1} {
		i1, i2, i3 := s.FactorIndex(i)
		if i1 < 0 || i1 >= s.RowFactors[0] || i2 < 0 || i2 >= s.RowFactors[1] || i3 < 0 || i3 >= s.RowFactors[2] {
			t.Fatalf("FactorIndex(%d) = (%d,%d,%d) out of range %v", i, i1, i2, i3, s.RowFactors)
		}
		if back := s.JoinIndex(i1, i2, i3); back != i {
			t.Fatalf("JoinIndex(FactorIndex(%d)) = %d", i, back)
		}
	}
}

func TestQuickFactorIndexRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		rows := 1 + r.Intn(100000)
		s, err := NewShape(rows, 8, 2)
		if err != nil {
			return false
		}
		i := r.Intn(rows)
		i1, i2, i3 := s.FactorIndex(i)
		return s.JoinIndex(i1, i2, i3) == i && s.Prefix(i) == i/s.RowFactors[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixMatchesFirstTwoFactors(t *testing.T) {
	s, _ := NewShape(1000, 8, 4)
	for i := 0; i < 1000; i += 37 {
		i1, i2, _ := s.FactorIndex(i)
		if s.Prefix(i) != i1*s.RowFactors[1]+i2 {
			t.Fatalf("Prefix(%d) inconsistent with FactorIndex", i)
		}
	}
}

func TestShapeSizes(t *testing.T) {
	s, err := NewShapeExplicit(1000, 8, [Dims]int{10, 10, 10}, [Dims]int{2, 2, 2}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sz := s.SliceSizes()
	if sz[0] != 2*4 || sz[1] != 4*2*4 || sz[2] != 4*2 {
		t.Fatalf("SliceSizes = %v", sz)
	}
	if s.PrefixSize() != 2*2*4 {
		t.Fatalf("PrefixSize = %d", s.PrefixSize())
	}
	wantParams := 10*8 + 10*32 + 10*8
	if s.NumParams() != wantParams {
		t.Fatalf("NumParams = %d want %d", s.NumParams(), wantParams)
	}
	if s.FootprintBytes() != int64(wantParams)*4 {
		t.Fatalf("FootprintBytes = %d", s.FootprintBytes())
	}
	if s.NumPrefixes() != 100 {
		t.Fatalf("NumPrefixes = %d", s.NumPrefixes())
	}
}

func TestCompressionRatioLargeTable(t *testing.T) {
	// A 1M-row, 128-dim table at rank 32 must compress by orders of
	// magnitude (Table III's regime).
	s, err := NewShape(1_000_000, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.CompressionRatio(); r < 100 {
		t.Fatalf("compression ratio %v unexpectedly small", r)
	}
}

func TestShapeString(t *testing.T) {
	s, _ := NewShape(100, 8, 4)
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
