package tt

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// lossOf computes 0.5·Σ out² for a batch so that dLoss/dOut = out.
func lossOf(tbl *Table, indices, offsets []int) float64 {
	out, _ := tbl.Forward(indices, offsets)
	var s float64
	for _, v := range out.Data {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

// TestBackwardGradCheck verifies the unfused, aggregated backward pass
// against numeric differentiation of every core.
func TestBackwardGradCheck(t *testing.T) {
	tbl := newTestTable(t, 20)
	tbl.Deterministic = true
	tbl.Opts = Options{DedupIndices: true, ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: false}

	indices := []int{0, 7, 7, 23, 94, 50}
	offsets := []int{0, 2, 4}
	const lr = 1.0 // cores move by exactly -grad

	before := [Dims]*tensor.Matrix{}
	for k := 0; k < Dims; k++ {
		before[k] = tbl.Cores[k].Clone()
	}
	out, cache := tbl.Forward(indices, offsets)
	tbl.Backward(cache, out, lr)

	const h = 1e-3
	for k := 0; k < Dims; k++ {
		probes := []int{0, len(before[k].Data) / 2, len(before[k].Data) - 1}
		for _, idx := range probes {
			// Analytic gradient = (before - after)/lr.
			analytic := float64(before[k].Data[idx]-tbl.Cores[k].Data[idx]) / float64(lr)
			// Numeric gradient on a pristine copy of the table.
			probe := &Table{Shape: tbl.Shape, Opts: tbl.Opts, Deterministic: true}
			for kk := 0; kk < Dims; kk++ {
				probe.Cores[kk] = before[kk].Clone()
			}
			probe.Cores[k].Data[idx] = before[k].Data[idx] + h
			lp := lossOf(probe, indices, offsets)
			probe.Cores[k].Data[idx] = before[k].Data[idx] - h
			lm := lossOf(probe, indices, offsets)
			numeric := (lp - lm) / (2 * h)
			if math.Abs(analytic-numeric) > 1e-2*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("core %d entry %d: analytic %v numeric %v", k, idx, analytic, numeric)
			}
		}
	}
}

// TestBackwardAggregationEquivalence: with the unfused update, aggregated
// and per-occurrence gradients must produce the same core updates (the
// gradient is linear in the output gradient rows).
func TestBackwardAggregationEquivalence(t *testing.T) {
	r := tensor.NewRNG(21)
	indices, offsets := randomBatch(r, 95, 12, 4)

	makeTbl := func(agg bool) *Table {
		tbl := newTestTable(t, 22)
		tbl.Deterministic = true
		tbl.Opts = Options{DedupIndices: true, ReusePrefix: true, InAdvanceAgg: agg, FusedUpdate: false}
		return tbl
	}
	a, b := makeTbl(true), makeTbl(false)
	outA, cacheA := a.Forward(indices, offsets)
	_, cacheB := b.Forward(indices, offsets)
	dOut := tensor.New(outA.Rows, outA.Cols)
	r.FillUniform(dOut.Data, 1)
	a.Backward(cacheA, dOut, 0.1)
	b.Backward(cacheB, dOut, 0.1)
	for k := 0; k < Dims; k++ {
		if d := a.Cores[k].MaxAbsDiff(b.Cores[k]); d > 1e-4 {
			t.Fatalf("core %d differs by %v between aggregated and per-occurrence backward", k, d)
		}
	}
}

// TestBackwardFusedMatchesUnfusedDisjointSlices: when no two work items
// share any TT slice, fused and unfused updates coincide exactly.
func TestBackwardFusedMatchesUnfusedDisjointSlices(t *testing.T) {
	shape := testShape(t) // factors {4,5,5}
	// Indices with pairwise-distinct i1, i2, i3.
	idxOf := func(i1, i2, i3 int) int { return (i1*5+i2)*5 + i3 }
	indices := []int{idxOf(0, 0, 0), idxOf(1, 1, 1), idxOf(2, 2, 2), idxOf(3, 3, 3)}
	offsets := []int{0, 2}

	run := func(fused bool) *Table {
		tbl := NewTable(shape, tensor.NewRNG(23), 0.1)
		tbl.Deterministic = true
		tbl.Opts = Options{DedupIndices: true, ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: fused}
		out, cache := tbl.Forward(indices, offsets)
		tbl.Backward(cache, out, 0.05)
		return tbl
	}
	fused, unfused := run(true), run(false)
	for k := 0; k < Dims; k++ {
		if d := fused.Cores[k].MaxAbsDiff(unfused.Cores[k]); d > 1e-6 {
			t.Fatalf("core %d fused/unfused differ by %v on disjoint slices", k, d)
		}
	}
}

// TestBackwardFusedConverges: hogwild-style parallel fused updates still
// drive a regression objective down.
func TestBackwardFusedConverges(t *testing.T) {
	tbl := newTestTable(t, 24)
	tbl.Opts = EffOptions()
	r := tensor.NewRNG(25)
	target := tensor.New(1, tbl.Dim())
	r.FillUniform(target.Data, 0.5)
	indices, offsets := []int{3, 17, 42}, []int{0, 1, 2}

	lossAt := func() float64 {
		out, _ := tbl.Forward(indices, offsets)
		var s float64
		for i, v := range out.Data {
			d := float64(v) - float64(target.Data[i%tbl.Dim()])
			s += d * d
		}
		return s
	}
	initial := lossAt()
	for step := 0; step < 2500; step++ {
		out, cache := tbl.Forward(indices, offsets)
		dOut := tensor.New(out.Rows, out.Cols)
		for i := range out.Data {
			dOut.Data[i] = 2 * (out.Data[i] - target.Data[i%tbl.Dim()])
		}
		tbl.Backward(cache, dOut, 0.01)
	}
	final := lossAt()
	if final > initial*0.1 {
		t.Fatalf("fused training did not converge: %v -> %v", initial, final)
	}
}

// TestBackwardMatchesEmbeddingGradient: the gradient that reaches the cores
// corresponds to the sparse embedding-table gradient. We verify via the
// materialized table: a TT update with small lr moves the materialized rows
// approximately like the dense table update (first-order in lr).
func TestBackwardMatchesEmbeddingGradientFirstOrder(t *testing.T) {
	tbl := newTestTable(t, 26)
	tbl.Deterministic = true
	tbl.Opts = Options{DedupIndices: true, ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: false}
	indices, offsets := []int{10, 20}, []int{0, 1}

	matBefore := tbl.Materialize()
	out, cache := tbl.Forward(indices, offsets)
	dOut := tensor.New(out.Rows, out.Cols)
	rng := tensor.NewRNG(27)
	rng.FillUniform(dOut.Data, 1)

	const lr = 1e-4
	tbl.Backward(cache, dOut, lr)
	matAfter := tbl.Materialize()

	// Rows 10 and 20 should each move by ≈ -lr · J·Jᵀ-weighted gradient;
	// directionally, the inner product of (after-before) with dOut must be
	// negative (descent) and rows untouched by the batch must move ~0.
	var moved, descent float64
	for s, idx := range indices {
		for j := 0; j < tbl.Dim(); j++ {
			delta := float64(matAfter.At(idx, j) - matBefore.At(idx, j))
			moved += math.Abs(delta)
			descent += delta * float64(dOut.At(s, j))
		}
	}
	if moved == 0 {
		t.Fatal("touched rows did not move")
	}
	if descent >= 0 {
		t.Fatalf("update is not a descent direction: %v", descent)
	}
	// An untouched row sharing no TT slice with the batch stays fixed.
	// indices 10=(0,2,0), 20=(0,4,0): choose 94=(3,3,4).
	for j := 0; j < tbl.Dim(); j++ {
		if d := math.Abs(float64(matAfter.At(94, j) - matBefore.At(94, j))); d > 1e-7 {
			t.Fatalf("slice-disjoint row moved by %v", d)
		}
	}
}

func TestBackwardValidation(t *testing.T) {
	tbl := newTestTable(t, 28)
	_, cache := tbl.Forward([]int{1}, []int{0})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil cache did not panic")
			}
		}()
		tbl.Backward(nil, tensor.New(1, tbl.Dim()), 0.1)
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("bad grad shape did not panic")
		}
	}()
	tbl.Backward(cache, tensor.New(2, tbl.Dim()), 0.1)
}

// TestBackwardNoPrefixBufferPath exercises backward when the forward pass
// ran without the reuse buffer (prefixes recomputed on the fly).
func TestBackwardNoPrefixBufferPath(t *testing.T) {
	run := func(reuse bool) *Table {
		tbl := newTestTable(t, 29)
		tbl.Deterministic = true
		tbl.Opts = Options{DedupIndices: true, ReusePrefix: reuse, InAdvanceAgg: true, FusedUpdate: false}
		indices, offsets := []int{5, 6, 7, 5}, []int{0, 2}
		out, cache := tbl.Forward(indices, offsets)
		tbl.Backward(cache, out, 0.1)
		return tbl
	}
	a, b := run(true), run(false)
	for k := 0; k < Dims; k++ {
		if d := a.Cores[k].MaxAbsDiff(b.Cores[k]); d > 1e-4 {
			t.Fatalf("core %d differs by %v between reuse and no-reuse backward", k, d)
		}
	}
}

// TestBackwardAggWithoutForwardDedup: aggregation enabled on a forward pass
// that ran per occurrence (the slot-map recovery path).
func TestBackwardAggWithoutForwardDedup(t *testing.T) {
	ref := newTestTable(t, 30)
	ref.Deterministic = true
	ref.Opts = Options{DedupIndices: true, ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: false}

	alt := newTestTable(t, 30)
	alt.Deterministic = true
	alt.Opts = Options{DedupIndices: false, ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: false}

	indices, offsets := []int{8, 8, 9, 33}, []int{0, 2}
	outR, cacheR := ref.Forward(indices, offsets)
	_, cacheA := alt.Forward(indices, offsets)
	ref.Backward(cacheR, outR, 0.1)
	alt.Backward(cacheA, outR, 0.1)
	for k := 0; k < Dims; k++ {
		if d := ref.Cores[k].MaxAbsDiff(alt.Cores[k]); d > 1e-4 {
			t.Fatalf("core %d differs by %v", k, d)
		}
	}
}
