package tt

import (
	"math"

	"repro/internal/tensor"
)

// EnableAdagrad switches the table's update rule from plain SGD to Adagrad:
// every TT-core entry keeps a squared-gradient accumulator and is updated
// with lr/√(accum+eps). Works with both the fused and unfused backward
// paths (the fused path updates accumulators inside the same kernel, the
// natural extension of the paper's fused TT core update).
func (t *Table) EnableAdagrad() {
	if t.adagrad[0] != nil {
		return
	}
	for k := 0; k < Dims; k++ {
		t.adagrad[k] = tensor.New(t.Cores[k].Rows, t.Cores[k].Cols)
	}
}

// AdagradEnabled reports whether the adaptive update rule is active.
func (t *Table) AdagradEnabled() bool { return t.adagrad[0] != nil }

// AdagradAccum exposes core k's accumulator (for tests and checkpoints);
// nil when Adagrad is disabled.
func (t *Table) AdagradAccum(k int) *tensor.Matrix { return t.adagrad[k] }

// adagradEps matches the dense optimizer's epsilon.
const adagradEps = 1e-8

// applyGradSlice applies grad to core k's slice row under the stripe lock,
// using Adagrad when enabled and plain SGD otherwise. Rows of the two
// prefix-source cores bump their version so the cross-batch prefix cache
// sees the mutation (prefixcache.go); the bump shares the slice write's
// stripe lock.
func (t *Table) applyGradSlice(k, row int, grad []float32, lr float32) {
	mu := t.lockFor(k, row)
	mu.Lock()
	if k < 2 && row < len(t.coreVer[k]) {
		t.coreVer[k][row]++
	}
	dst := t.Cores[k].Row(row)
	if acc := t.adagrad[k]; acc != nil {
		arow := acc.Row(row)
		for i, g := range grad {
			arow[i] += g * g
			dst[i] -= lr * g / float32(math.Sqrt(float64(arow[i])+adagradEps))
		}
	} else {
		tensor.Axpy(-lr, grad, dst)
	}
	mu.Unlock()
}

// adagradSweep applies the unfused update from full core-gradient buffers.
func (t *Table) adagradSweep(gradBufs [Dims]*tensor.Matrix, lr float32) {
	for k := 0; k < Dims; k++ {
		acc := t.adagrad[k]
		core := t.Cores[k]
		for i, g := range gradBufs[k].Data {
			acc.Data[i] += g * g
			core.Data[i] -= lr * g / float32(math.Sqrt(float64(acc.Data[i])+adagradEps))
		}
	}
}
