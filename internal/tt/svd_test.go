package tt

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func reconstruct(u *tensor.Matrix, s []float32, v *tensor.Matrix) *tensor.Matrix {
	us := tensor.New(u.Rows, u.Cols)
	for i := 0; i < u.Rows; i++ {
		for j := 0; j < u.Cols; j++ {
			us.Set(i, j, u.At(i, j)*s[j])
		}
	}
	out := tensor.New(u.Rows, v.Rows)
	tensor.MatMulTransB(out, us, v)
	return out
}

func TestSVDReconstruction(t *testing.T) {
	r := tensor.NewRNG(40)
	a := tensor.New(12, 8)
	r.FillUniform(a.Data, 1)
	u, s, v := SVD(a)
	back := reconstruct(u, s, v)
	if d := back.MaxAbsDiff(a); d > 1e-4 {
		t.Fatalf("SVD reconstruction error %v", d)
	}
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-6 {
			t.Fatalf("singular values not descending: %v", s)
		}
		if s[i] < 0 {
			t.Fatalf("negative singular value %v", s[i])
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	r := tensor.NewRNG(41)
	a := tensor.New(10, 6)
	r.FillUniform(a.Data, 1)
	u, _, v := SVD(a)
	utu := tensor.New(6, 6)
	tensor.MatMulTransA(utu, u, u)
	vtv := tensor.New(6, 6)
	tensor.MatMulTransA(vtv, v, v)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := float32(0)
			if i == j {
				want = 1
			}
			if math.Abs(float64(utu.At(i, j)-want)) > 1e-4 {
				t.Fatalf("UᵀU[%d,%d] = %v", i, j, utu.At(i, j))
			}
			if math.Abs(float64(vtv.At(i, j)-want)) > 1e-4 {
				t.Fatalf("VᵀV[%d,%d] = %v", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := tensor.New(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	a.Set(2, 2, 1)
	_, s, _ := SVD(a)
	want := []float32{3, 2, 1}
	for i := range want {
		if math.Abs(float64(s[i]-want[i])) > 1e-5 {
			t.Fatalf("singular values %v want %v", s, want)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := tensor.New(4, 3)
	x := []float32{1, 2, 3, 4}
	y := []float32{1, 0, -1}
	for i := range x {
		for j := range y {
			a.Set(i, j, x[i]*y[j])
		}
	}
	u, s, v := SVD(a)
	if s[0] < 1 {
		t.Fatalf("leading singular value %v too small", s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i] > 1e-5 {
			t.Fatalf("rank-1 matrix has extra singular value %v", s[i])
		}
	}
	back := reconstruct(u, s, v)
	if d := back.MaxAbsDiff(a); d > 1e-4 {
		t.Fatalf("rank-deficient reconstruction error %v", d)
	}
}

// TestDecomposeDenseExactForLowTTRank: a table generated from a TT table is
// recovered (up to float error) by TT-SVD with the same ranks.
func TestDecomposeDenseExactForLowTTRank(t *testing.T) {
	shape, err := NewShapeExplicit(60, 12, [Dims]int{3, 4, 5}, [Dims]int{2, 2, 3}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := NewTable(shape, tensor.NewRNG(42), 0.5)
	dense := src.Materialize()

	got, err := DecomposeDense(dense, shape)
	if err != nil {
		t.Fatal(err)
	}
	back := got.Materialize()
	if d := back.MaxAbsDiff(dense); d > 1e-3 {
		t.Fatalf("TT-SVD round trip error %v", d)
	}
}

// TestDecomposeDenseApproximationImprovesWithRank: for a random (full-rank)
// table, higher TT ranks give lower reconstruction error.
func TestDecomposeDenseApproximationImprovesWithRank(t *testing.T) {
	rows, dim := 48, 8
	r := tensor.NewRNG(43)
	dense := tensor.New(rows, dim)
	r.FillUniform(dense.Data, 1)

	errAt := func(rank int) float64 {
		shape, err := NewShapeExplicit(rows, dim, [Dims]int{4, 4, 3}, [Dims]int{2, 2, 2}, rank, rank)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := DecomposeDense(dense, shape)
		if err != nil {
			t.Fatal(err)
		}
		diff := tbl.Materialize()
		var s float64
		for i, v := range diff.Data {
			d := float64(v - dense.Data[i])
			s += d * d
		}
		return math.Sqrt(s)
	}
	e2, e6 := errAt(2), errAt(6)
	if e6 >= e2 {
		t.Fatalf("error did not improve with rank: rank2 %v rank6 %v", e2, e6)
	}
}

func TestDecomposeDenseShapeMismatch(t *testing.T) {
	shape, _ := NewShape(60, 8, 2)
	dense := tensor.New(61, 8)
	if _, err := DecomposeDense(dense, shape); err == nil {
		t.Fatal("mismatched dense table accepted")
	}
}

func TestDecomposeDenseRankTooLarge(t *testing.T) {
	shape, err := NewShapeExplicit(8, 8, [Dims]int{2, 2, 2}, [Dims]int{2, 2, 2}, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	dense := tensor.New(8, 8)
	if _, err := DecomposeDense(dense, shape); err == nil {
		t.Fatal("oversized rank accepted")
	}
}

func TestDecomposedTableTrainable(t *testing.T) {
	// A TT-SVD-initialized table must plug straight into forward/backward.
	shape, err := NewShapeExplicit(30, 8, [Dims]int{3, 2, 5}, [Dims]int{2, 2, 2}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(44)
	dense := tensor.New(30, 8)
	r.FillUniform(dense.Data, 0.5)
	tbl, err := DecomposeDense(dense, shape)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Deterministic = true
	out, cache := tbl.Forward([]int{1, 2}, []int{0, 1})
	tbl.Backward(cache, out, 0.1)
}
