package tt

import (
	"testing"

	"repro/internal/tensor"
)

func TestAdagradEnableIdempotent(t *testing.T) {
	tbl := newTestTable(t, 60)
	if tbl.AdagradEnabled() {
		t.Fatal("Adagrad on by default")
	}
	tbl.EnableAdagrad()
	acc := tbl.AdagradAccum(0)
	tbl.EnableAdagrad() // no-op
	if tbl.AdagradAccum(0) != acc {
		t.Fatal("EnableAdagrad reallocated state")
	}
}

func TestAdagradFusedMatchesUnfusedDisjointSlices(t *testing.T) {
	shape := testShape(t)
	idxOf := func(i1, i2, i3 int) int { return (i1*5+i2)*5 + i3 }
	indices := []int{idxOf(0, 0, 0), idxOf(1, 1, 1), idxOf(2, 2, 2)}
	offsets := []int{0, 2}

	run := func(fused bool) *Table {
		tbl := NewTable(shape, tensor.NewRNG(61), 0.1)
		tbl.Deterministic = true
		tbl.EnableAdagrad()
		tbl.Opts = Options{DedupIndices: true, ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: fused}
		out, cache := tbl.Forward(indices, offsets)
		tbl.Backward(cache, out, 0.1)
		return tbl
	}
	fused, unfused := run(true), run(false)
	for k := 0; k < Dims; k++ {
		if d := fused.Cores[k].MaxAbsDiff(unfused.Cores[k]); d > 1e-6 {
			t.Fatalf("core %d fused/unfused Adagrad differ by %v", k, d)
		}
		if d := fused.AdagradAccum(k).MaxAbsDiff(unfused.AdagradAccum(k)); d > 1e-6 {
			t.Fatalf("core %d accumulators differ by %v", k, d)
		}
	}
}

func TestAdagradStepsShrink(t *testing.T) {
	tbl := newTestTable(t, 62)
	tbl.Deterministic = true
	tbl.EnableAdagrad()
	indices, offsets := []int{5}, []int{0}
	dOut := tensor.New(1, tbl.Dim())
	tensor.Fill(dOut.Data, 1)

	norm := func(a, b [Dims]*tensor.Matrix) float64 {
		var s float64
		for k := 0; k < Dims; k++ {
			d := a[k].MaxAbsDiff(b[k])
			s += float64(d)
		}
		return s
	}
	snap := func() [Dims]*tensor.Matrix {
		var out [Dims]*tensor.Matrix
		for k := 0; k < Dims; k++ {
			out[k] = tbl.Cores[k].Clone()
		}
		return out
	}
	s0 := snap()
	_, cache := tbl.Forward(indices, offsets)
	tbl.Backward(cache, dOut, 0.5)
	s1 := snap()
	// Run several more steps so accumulators grow, then compare step sizes.
	for i := 0; i < 5; i++ {
		_, cache = tbl.Forward(indices, offsets)
		tbl.Backward(cache, dOut, 0.5)
	}
	s2 := snap()
	_, cache = tbl.Forward(indices, offsets)
	tbl.Backward(cache, dOut, 0.5)
	s3 := snap()
	if norm(s2, s3) >= norm(s0, s1) {
		t.Fatalf("Adagrad step did not shrink: first %v later %v", norm(s0, s1), norm(s2, s3))
	}
}

func TestAdagradConverges(t *testing.T) {
	tbl := newTestTable(t, 63)
	tbl.EnableAdagrad()
	r := tensor.NewRNG(64)
	target := tensor.New(1, tbl.Dim())
	r.FillUniform(target.Data, 0.5)
	indices, offsets := []int{3, 17, 42}, []int{0, 1, 2}

	lossAt := func() float64 {
		out, _ := tbl.Forward(indices, offsets)
		var s float64
		for i, v := range out.Data {
			d := float64(v) - float64(target.Data[i%tbl.Dim()])
			s += d * d
		}
		return s
	}
	initial := lossAt()
	for step := 0; step < 1500; step++ {
		out, cache := tbl.Forward(indices, offsets)
		dOut := tensor.New(out.Rows, out.Cols)
		for i := range out.Data {
			dOut.Data[i] = 2 * (out.Data[i] - target.Data[i%tbl.Dim()])
		}
		tbl.Backward(cache, dOut, 0.05)
	}
	if final := lossAt(); final > initial*0.1 {
		t.Fatalf("Adagrad training did not converge: %v -> %v", initial, final)
	}
}
