package tt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Options selects which of the paper's optimizations a Table uses. The zero
// value is the plain TT-Rec behaviour; EffOptions() enables everything
// (the Eff-TT table).
type Options struct {
	// DedupIndices computes each unique row of a batch once and scatters it,
	// instead of recomputing per occurrence (part of two-level reuse, §III-A).
	DedupIndices bool
	// ReusePrefix maintains the reuse buffer of first-two-core products
	// keyed by index/m₃ and evaluates it with batched GEMM (Algorithm 1).
	ReusePrefix bool
	// InAdvanceAgg aggregates embedding gradients per unique index before
	// multiplying with TT cores in the backward pass (§III-B).
	InAdvanceAgg bool
	// FusedUpdate applies the SGD update inside the backward kernel instead
	// of materializing core gradients and updating in a second pass (§III-B).
	FusedUpdate bool
}

// EffOptions returns the full Eff-TT configuration.
func EffOptions() Options {
	return Options{DedupIndices: true, ReusePrefix: true, InAdvanceAgg: true, FusedUpdate: true}
}

// NaiveOptions returns the TT-Rec baseline configuration.
func NaiveOptions() Options { return Options{} }

// lockStripes is the number of striped mutexes per core protecting fused
// in-place slice updates when the backward pass runs in parallel.
const lockStripes = 128

// Table is a TT-compressed embedding table with sum-pooling lookup
// semantics identical to embedding.Bag. It is safe for concurrent lookups;
// backward passes must not run concurrently with each other on the same
// table.
type Table struct {
	Shape Shape
	Opts  Options
	// Deterministic forces single-threaded forward/backward execution.
	// The parallel fused-update path applies slice updates in whatever
	// order goroutines reach them (hogwild-style, as the paper's CUDA
	// kernel does with atomics); tests that need bit-exact results set
	// this flag.
	Deterministic bool
	// Cores[k] stores one slice per row: Cores[k] has RowFactors[k] rows of
	// SliceSizes()[k] floats each.
	Cores [Dims]*tensor.Matrix

	locks [Dims][lockStripes]sync.Mutex

	// grads holds core-gradient accumulators for the unfused update path,
	// allocated lazily.
	grads [Dims]*tensor.Matrix

	// adagrad holds per-core squared-gradient accumulators when the
	// adaptive update rule is enabled (see EnableAdagrad).
	adagrad [Dims]*tensor.Matrix

	// lastCache retains the most recent Lookup's forward cache for Update.
	lastCache *ForwardCache

	// arena is the table-owned forward cache the Lookup/Update path reuses
	// across batches (see ForwardCache), allocated on first Lookup.
	arena *ForwardCache

	// pcache persists prefix products across batches (see prefixcache.go);
	// nil until the arena path first runs with ReusePrefix on a
	// non-Deterministic table.
	pcache *prefixCache

	// protected is the current lookahead protection set: an immutable
	// bitmap of prefixes whose cache slots must not be recycled because
	// their rows recur in the planned window. Written by ProtectPrefixes
	// (the pipeline's pre-fetcher), read by the serialized arena path —
	// hence an atomic pointer to immutable storage rather than a lock.
	protected atomic.Pointer[protectedPrefixes]

	// coreVer[k][row] counts mutations of core k's slice row (k < 2, the
	// prefix sources). The fused backward kernel bumps rows under the same
	// stripe lock that guards the slice write; all other mutators are
	// serialized by the Table protocol.
	coreVer [2][]uint64

	// met holds the forward-path instruments (see AttachMetrics). The zero
	// value's nil counters make every record a no-op, so an unattached
	// table pays only nil checks on the hot path.
	met tableMetrics
}

// tableMetrics instruments the two-level reuse of the forward pass: how
// many index occurrences collapse into work items (deduplication) and how
// many work items share a reuse-buffer prefix (Algorithm 1), plus the
// batched-GEMM launches that evaluate the buffer. All counters aggregate
// across every table attached to the same registry, so the exported ratios
// describe the whole embedding layer.
type tableMetrics struct {
	attached bool

	indices        *obs.Counter // index occurrences entering Forward
	workItems      *obs.Counter // rows actually computed (unique under dedup)
	prefixWork     *obs.Counter // work items entering the prefix stage
	uniquePrefixes *obs.Counter // distinct prefixes materialized per batch
	gemmLaunches   *obs.Counter // batched-GEMM kernel launches
	gemmOps        *obs.Counter // individual GEMMs inside those launches

	backwardRows *obs.Counter // gradient occurrences entering Backward
	backwardWork *obs.Counter // gradient rows after in-advance aggregation

	cacheHits   *obs.Counter // unique prefixes served by the cross-batch cache
	cacheMisses *obs.Counter // unique prefixes recomputed (stale or absent)

	dedupRatio    *obs.Gauge // cumulative indices / work items (≥ 1)
	prefixHitRate *obs.Gauge // cumulative share of prefix work served by the buffer
	backwardAgg   *obs.Gauge // cumulative backward rows / aggregated rows (≥ 1)
}

// AttachMetrics wires the table's forward-path counters to r under tt_*
// names. Multiple tables attached to one registry share the instruments
// (the registry is get-or-create by name), so the counts and ratios are
// embedding-layer-wide. A nil registry detaches nothing and costs nothing:
// the returned nil instruments keep every record path a no-op.
func (t *Table) AttachMetrics(r *obs.Registry) {
	t.met = tableMetrics{
		attached:       r != nil,
		indices:        r.Counter("tt_indices"),
		workItems:      r.Counter("tt_work_items"),
		prefixWork:     r.Counter("tt_prefix_work"),
		uniquePrefixes: r.Counter("tt_unique_prefixes"),
		gemmLaunches:   r.Counter("tt_batched_gemm_launches"),
		gemmOps:        r.Counter("tt_batched_gemm_ops"),
		backwardRows:   r.Counter("tt_backward_rows"),
		backwardWork:   r.Counter("tt_backward_work"),
		cacheHits:      r.Counter("tt_prefix_cache_hits"),
		cacheMisses:    r.Counter("tt_prefix_cache_misses"),
		dedupRatio:     r.Gauge("tt_dedup_ratio"),
		prefixHitRate:  r.Gauge("tt_prefix_hit_rate"),
		backwardAgg:    r.Gauge("tt_backward_agg_ratio"),
	}
}

// recordForward accumulates one Forward call's dedup split and refreshes
// the cumulative dedup-ratio gauge.
func (m *tableMetrics) recordForward(indices, workItems int) {
	if !m.attached {
		return
	}
	m.indices.Add(int64(indices))
	m.workItems.Add(int64(workItems))
	if w := m.workItems.Value(); w > 0 {
		m.dedupRatio.Set(float64(m.indices.Value()) / float64(w))
	}
}

// recordPrefix accumulates one reuse-buffer fill and refreshes the
// cumulative prefix-hit-rate gauge: the share of prefix-stage work items
// whose first-two-core product was already in the buffer.
func (m *tableMetrics) recordPrefix(workItems, uniquePrefixes int) {
	if !m.attached {
		return
	}
	m.prefixWork.Add(int64(workItems))
	m.uniquePrefixes.Add(int64(uniquePrefixes))
	m.gemmLaunches.Inc()
	m.gemmOps.Add(int64(uniquePrefixes))
	if w := m.prefixWork.Value(); w > 0 {
		m.prefixHitRate.Set(1 - float64(m.uniquePrefixes.Value())/float64(w))
	}
}

// recordPrefixCache accumulates one batch's cross-batch cache outcome:
// hits are unique prefixes whose cached product was still version-valid,
// misses were recomputed (absent, evicted, or invalidated by an update).
func (m *tableMetrics) recordPrefixCache(hits, misses int) {
	if !m.attached {
		return
	}
	m.cacheHits.Add(int64(hits))
	m.cacheMisses.Add(int64(misses))
}

// recordBackward accumulates one Backward call's gradient-row split and
// refreshes the in-advance-aggregation ratio gauge (§III-B): occurrences
// per core-multiplication chain actually run.
func (m *tableMetrics) recordBackward(rows, workRows int) {
	if !m.attached {
		return
	}
	m.backwardRows.Add(int64(rows))
	m.backwardWork.Add(int64(workRows))
	if w := m.backwardWork.Value(); w > 0 {
		m.backwardAgg.Set(float64(m.backwardRows.Value()) / float64(w))
	}
}

// NewTable allocates a table for the given shape with Eff-TT options and
// random cores scaled so materialized rows have standard deviation near
// targetStd (pass 0 for the default 0.05, roughly matching the DLRM
// reference initialization at the bench scales used here).
func NewTable(shape Shape, rng *tensor.RNG, targetStd float64) *Table {
	if err := shape.Validate(); err != nil {
		//elrec:invariant shape pre-validated by callers; Shape.Validate is the error-returning path
		panic(err)
	}
	if targetStd <= 0 {
		targetStd = 0.05
	}
	t := &Table{Shape: shape, Opts: EffOptions()}
	sz := shape.SliceSizes()
	// Var(row element) ≈ R₁·R₂·σ₁²σ₂²σ₃²; pick equal per-core σ so the
	// product of the three cores lands on targetStd.
	sigma := math.Pow(targetStd*targetStd/float64(shape.R1*shape.R2), 1.0/6.0)
	for k := 0; k < Dims; k++ {
		t.Cores[k] = tensor.New(shape.RowFactors[k], sz[k])
		rng.FillNormal(t.Cores[k].Data, float32(sigma))
	}
	return t
}

// NumRows returns the logical row count of the table.
func (t *Table) NumRows() int { return t.Shape.Rows }

// Dim returns the embedding dimension.
func (t *Table) Dim() int { return t.Shape.Dim }

// FootprintBytes returns the TT parameter storage in bytes.
func (t *Table) FootprintBytes() int64 { return t.Shape.FootprintBytes() }

// Slice1 returns G₁[i₁] as a flat n₁×R₁ buffer.
func (t *Table) Slice1(i1 int) []float32 { return t.Cores[0].Row(i1) }

// Slice2 returns G₂[i₂] as a flat R₁×(n₂R₂) buffer.
func (t *Table) Slice2(i2 int) []float32 { return t.Cores[1].Row(i2) }

// Slice3 returns G₃[i₃] as a flat R₂×n₃ buffer.
func (t *Table) Slice3(i3 int) []float32 { return t.Cores[2].Row(i3) }

// computePrefix writes G₁[i₁]·G₂[i₂] into dst (n₁ × n₂R₂ row-major,
// PrefixSize() floats).
func (t *Table) computePrefix(i1, i2 int, dst []float32) {
	n := t.Shape.ColFactors
	tensor.GemmInto(n[0], t.Shape.R1, n[1]*t.Shape.R2, t.Slice1(i1), t.Slice2(i2), dst)
}

// rowFromPrefix writes the embedding row into dst (Dim floats) given the
// prefix product p12 (n₁n₂ × R₂ when reshaped) and the third TT index.
func (t *Table) rowFromPrefix(p12 []float32, i3 int, dst []float32) {
	n := t.Shape.ColFactors
	tensor.GemmInto(n[0]*n[1], t.Shape.R2, n[2], p12, t.Slice3(i3), dst)
}

// LookupRow materializes a single embedding row into dst (len Dim). It is
// the reference single-index path used by tests and the parameter server.
func (t *Table) LookupRow(i int, dst []float32) {
	if i < 0 || i >= t.Shape.Rows {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic(fmt.Sprintf("tt: LookupRow index %d out of [0,%d)", i, t.Shape.Rows))
	}
	if len(dst) != t.Shape.Dim {
		//elrec:invariant index bounds/shape contract: inputs are validated upstream
		panic(fmt.Sprintf("tt: LookupRow dst len %d want %d", len(dst), t.Shape.Dim))
	}
	i1, i2, i3 := t.Shape.FactorIndex(i)
	p12 := make([]float32, t.Shape.PrefixSize())
	t.computePrefix(i1, i2, p12)
	t.rowFromPrefix(p12, i3, dst)
}

// Materialize reconstructs the full logical table (Rows × Dim); for tests
// and TT-SVD round trips only — it defeats the compression.
func (t *Table) Materialize() *tensor.Matrix {
	out := tensor.New(t.Shape.Rows, t.Shape.Dim)
	p12 := make([]float32, t.Shape.PrefixSize())
	lastPrefix := -1
	for i := 0; i < t.Shape.Rows; i++ {
		i1, i2, i3 := t.Shape.FactorIndex(i)
		if pfx := t.Shape.Prefix(i); pfx != lastPrefix {
			t.computePrefix(i1, i2, p12)
			lastPrefix = pfx
		}
		t.rowFromPrefix(p12, i3, out.Row(i))
	}
	return out
}

// lockFor returns the striped mutex guarding slice row of core k.
func (t *Table) lockFor(k, row int) *sync.Mutex {
	return &t.locks[k][row&(lockStripes-1)]
}

// gradBuffers returns (allocating on first use) the unfused core-gradient
// accumulators, zeroed.
func (t *Table) gradBuffers() [Dims]*tensor.Matrix {
	for k := 0; k < Dims; k++ {
		if t.grads[k] == nil {
			//elrec:coldpath first-use accumulator construction; later batches zero in place
			t.grads[k] = tensor.New(t.Cores[k].Rows, t.Cores[k].Cols)
		} else {
			t.grads[k].Zero()
		}
	}
	return t.grads
}
