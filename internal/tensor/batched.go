package tensor

import "fmt"

// GemmBatch describes one entry of a batched GEMM call: C = A·B with the
// shared dimensions of the batch. The slices alias caller storage, exactly
// like the device pointers passed to cublasGemmBatchedEx — Algorithm 1 in the
// paper prepares precisely these pointer lists.
type GemmBatch struct {
	A, B, C []float32
}

// BatchedMatMul computes C_i = A_i · B_i for every entry, where every A_i is
// m×k, every B_i is k×n and every C_i is m×n, all row-major. It mirrors
// cublasGemmBatchedEx: one shape, many pointer triples. Entries are processed
// in parallel. C entries must not alias each other.
func BatchedMatMul(m, k, n int, batch []GemmBatch) {
	if m < 0 || k < 0 || n < 0 {
		//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
		panic(fmt.Sprintf("tensor: BatchedMatMul negative dims %d,%d,%d", m, k, n))
	}
	for idx, e := range batch {
		if len(e.A) < m*k || len(e.B) < k*n || len(e.C) < m*n {
			//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
			panic(fmt.Sprintf("tensor: BatchedMatMul entry %d buffers too small for %dx%dx%d", idx, m, k, n))
		}
	}
	work := len(batch) * m * k * n
	// The closure only exists on the parallel branch so the serial hot path
	// (single worker, or small batches) stays allocation-free.
	if work >= parallelThreshold && len(batch) > 1 && Workers() > 1 {
		ParallelFor(len(batch), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				gemmInto(m, k, n, batch[i].A, batch[i].B, batch[i].C)
			}
		})
		return
	}
	for i := range batch {
		gemmInto(m, k, n, batch[i].A, batch[i].B, batch[i].C)
	}
}

// BatchedMatMulTransA computes C_i = A_iᵀ · B_i for every entry, where every
// A_i is k×m (so A_iᵀ is m×k), every B_i is k×n and every C_i is m×n. Used by
// the Eff-TT backward pass to form core gradients in bulk.
func BatchedMatMulTransA(m, k, n int, batch []GemmBatch) {
	if m < 0 || k < 0 || n < 0 {
		//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
		panic(fmt.Sprintf("tensor: BatchedMatMulTransA negative dims %d,%d,%d", m, k, n))
	}
	for idx, e := range batch {
		if len(e.A) < k*m || len(e.B) < k*n || len(e.C) < m*n {
			//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
			panic(fmt.Sprintf("tensor: BatchedMatMulTransA entry %d buffers too small", idx))
		}
	}
	work := len(batch) * m * k * n
	if work >= parallelThreshold && len(batch) > 1 && Workers() > 1 {
		ParallelFor(len(batch), func(lo, hi int) {
			batchedTransARange(m, k, n, batch[lo:hi])
		})
		return
	}
	batchedTransARange(m, k, n, batch)
}

func batchedTransARange(m, k, n int, batch []GemmBatch) {
	for i := range batch {
		e := batch[i]
		z := e.C[:m*n]
		for x := range z {
			z[x] = 0
		}
		gemmTransABlocked(m, k, n, e.A, e.B, e.C)
	}
}

// gemmInto computes c = a·b for row-major buffers with explicit dimensions,
// zeroing c first.
func gemmInto(m, k, n int, a, b, c []float32) {
	gemmBlocked(m, k, n, a, b, c, false)
}

// GemmInto exposes the raw-buffer GEMM (c = a·b, shapes m×k · k×n) for
// callers that manage their own flat storage.
func GemmInto(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
		panic("tensor: GemmInto buffers too small")
	}
	gemmInto(m, k, n, a, b, c)
}

// GemmAddInto computes c += a·b for row-major buffers.
func GemmAddInto(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
		panic("tensor: GemmAddInto buffers too small")
	}
	gemmBlocked(m, k, n, a, b, c, true)
}

// GemmTransAAddInto computes c += aᵀ·b where a is k×m row-major (aᵀ is m×k),
// b is k×n and c is m×n.
func GemmTransAAddInto(m, k, n int, a, b, c []float32) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
		panic("tensor: GemmTransAAddInto buffers too small")
	}
	gemmTransABlocked(m, k, n, a, b, c)
}

// GemmTransBAddInto computes c += a·bᵀ where a is m×k, b is n×k row-major
// (bᵀ is k×n) and c is m×n.
func GemmTransBAddInto(m, k, n int, a, b, c []float32) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		//elrec:invariant batched-GEMM buffer contract: pointer lists are built by the TT kernels
		panic("tensor: GemmTransBAddInto buffers too small")
	}
	gemmTransBBlocked(m, k, n, a, b, c, true)
}
