// Package tensor provides the dense float32 linear-algebra kernels that the
// rest of the repository builds on. It plays the role that cuBLAS plays in
// the paper: plain GEMM, transposed GEMM variants, a batched GEMM with a
// pointer-list interface mirroring cublasGemmBatchedEx, and element-wise
// vector helpers. All kernels are deterministic and goroutine-parallel over
// rows (or batch entries) where profitable.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use New to allocate storage.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying. The slice
// length must be exactly rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns the i-th row as a subslice (no copy).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Reshape returns a view of m with new dimensions sharing the same data.
// rows*cols must equal the current element count.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows*cols != m.Rows*m.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: Reshape %dx%d -> %dx%d changes element count", m.Rows, m.Cols, rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: m.Data}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Equal reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element-wise difference between m
// and other, panicking on shape mismatch.
func (m *Matrix) MaxAbsDiff(other *Matrix) float32 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var max float32
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MatMul computes dst = a · b. dst must be preallocated with shape
// a.Rows × b.Cols and must not alias a or b. Rows of dst are computed in
// parallel when the problem is large enough.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	k, n := a.Cols, b.Cols
	work := a.Rows * k * n
	if work >= parallelThreshold && Workers() > 1 {
		ParallelFor(a.Rows, func(lo, hi int) {
			gemmBlocked(hi-lo, k, n, a.Data[lo*k:], b.Data, dst.Data[lo*n:], false)
		})
		return
	}
	gemmBlocked(a.Rows, k, n, a.Data, b.Data, dst.Data, false)
}

// MatMulAdd computes dst += a · b (accumulating into dst).
func MatMulAdd(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulAdd inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulAdd dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	gemmBlocked(a.Rows, a.Cols, b.Cols, a.Data, b.Data, dst.Data, true)
}

// MatMulTransA computes dst = aᵀ · b where a is stored untransposed.
// dst shape must be a.Cols × b.Cols.
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d != %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransA dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	MatMulTransAAdd(dst, a, b)
}

// MatMulTransAAdd computes dst += aᵀ · b.
func MatMulTransAAdd(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransAAdd inner dims %d != %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransAAdd dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	gemmTransABlocked(a.Cols, a.Rows, b.Cols, a.Data, b.Data, dst.Data)
}

// MatMulTransB computes dst = a · bᵀ where b is stored untransposed.
// dst shape must be a.Rows × b.Rows.
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransB dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	k, n := a.Cols, b.Rows
	work := a.Rows * k * n
	if work >= parallelThreshold && Workers() > 1 {
		ParallelFor(a.Rows, func(lo, hi int) {
			gemmTransBBlocked(hi-lo, k, n, a.Data[lo*k:], b.Data, dst.Data[lo*n:], false)
		})
		return
	}
	gemmTransBBlocked(a.Rows, k, n, a.Data, b.Data, dst.Data, false)
}

// MatMulTransBAdd computes dst += a · bᵀ.
func MatMulTransBAdd(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransBAdd inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: MatMulTransBAdd dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	gemmTransBBlocked(a.Rows, a.Cols, b.Rows, a.Data, b.Data, dst.Data, true)
}

// axpy computes y += a*x over equal-length slices; the loop vectorizes well.
func axpy(a float32, x, y []float32) {
	_ = y[len(x)-1]
	for i, xv := range x {
		y[i] += a * xv
	}
}

// dot returns the inner product of equal-length slices.
func dot(x, y []float32) float32 {
	var s float32
	_ = y[len(x)-1]
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// Axpy computes y += a*x for vectors exposed as slices.
func Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return
	}
	axpy(a, x, y)
}

// Dot returns xᵀy for vectors exposed as slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: Dot length mismatch %d != %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	return dot(x, y)
}

// Scale multiplies every element of x by a in place.
func Scale(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// AddTo computes dst += src element-wise.
func AddTo(dst, src []float32) {
	if len(dst) != len(src) {
		//elrec:invariant kernel shape contract: operands are sized at construction; an error return would poison every hot-path caller
		panic(fmt.Sprintf("tensor: AddTo length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}
