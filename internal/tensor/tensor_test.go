package tensor

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference triple loop used to validate the optimized
// kernels.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func randomMatrix(r *RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	r.FillUniform(m.Data, 1)
	return m
}

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1,2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, make([]float32, 3))
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v want 5", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 5 {
		t.Fatalf("Row(1)[2] = %v want 5", row[2])
	}
	row[0] = 7 // Row aliases storage.
	if m.At(1, 0) != 7 {
		t.Fatal("Row did not alias underlying data")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	m := New(2, 6)
	m.Set(0, 5, 3)
	v := m.Reshape(4, 3)
	if v.At(1, 2) != 3 {
		t.Fatalf("Reshape view lost element: got %v", v.At(1, 2))
	}
	v.Set(0, 0, 8)
	if m.At(0, 0) != 8 {
		t.Fatal("Reshape must alias data")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape changing element count did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestTranspose(t *testing.T) {
	r := NewRNG(1)
	m := randomMatrix(r, 5, 7)
	tr := m.Transpose()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	back := tr.Transpose()
	if !back.Equal(m, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := NewRNG(2)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 9, 21}, {64, 128, 32}}
	for _, s := range shapes {
		a := randomMatrix(r, s[0], s[1])
		b := randomMatrix(r, s[1], s[2])
		got := New(s[0], s[2])
		MatMul(got, a, b)
		want := naiveMatMul(a, b)
		if d := got.MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("MatMul %v deviates from naive by %v", s, d)
		}
	}
}

func TestMatMulLargeParallelPath(t *testing.T) {
	// Exceeds parallelThreshold so the ParallelFor branch executes.
	r := NewRNG(3)
	a := randomMatrix(r, 70, 60)
	b := randomMatrix(r, 60, 50)
	got := New(70, 50)
	MatMul(got, a, b)
	want := naiveMatMul(a, b)
	if d := got.MaxAbsDiff(want); d > 1e-3 {
		t.Fatalf("parallel MatMul deviates by %v", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 2), a, b)
}

func TestMatMulAddAccumulates(t *testing.T) {
	r := NewRNG(4)
	a := randomMatrix(r, 4, 5)
	b := randomMatrix(r, 5, 6)
	dst := randomMatrix(r, 4, 6)
	before := dst.Clone()
	MatMulAdd(dst, a, b)
	prod := naiveMatMul(a, b)
	for i := range dst.Data {
		want := before.Data[i] + prod.Data[i]
		if diff := float64(dst.Data[i] - want); math.Abs(diff) > 1e-4 {
			t.Fatalf("MatMulAdd[%d] = %v want %v", i, dst.Data[i], want)
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	r := NewRNG(5)
	a := randomMatrix(r, 6, 4) // aᵀ is 4x6
	b := randomMatrix(r, 6, 5)
	got := New(4, 5)
	MatMulTransA(got, a, b)
	want := naiveMatMul(a.Transpose(), b)
	if d := got.MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("MatMulTransA deviates by %v", d)
	}
}

func TestMatMulTransB(t *testing.T) {
	r := NewRNG(6)
	a := randomMatrix(r, 6, 4)
	b := randomMatrix(r, 5, 4) // bᵀ is 4x5
	got := New(6, 5)
	MatMulTransB(got, a, b)
	want := naiveMatMul(a, b.Transpose())
	if d := got.MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("MatMulTransB deviates by %v", d)
	}
}

func TestMatMulTransBAdd(t *testing.T) {
	r := NewRNG(7)
	a := randomMatrix(r, 3, 4)
	b := randomMatrix(r, 2, 4)
	dst := randomMatrix(r, 3, 2)
	before := dst.Clone()
	MatMulTransBAdd(dst, a, b)
	prod := naiveMatMul(a, b.Transpose())
	for i := range dst.Data {
		want := before.Data[i] + prod.Data[i]
		if math.Abs(float64(dst.Data[i]-want)) > 1e-4 {
			t.Fatalf("MatMulTransBAdd[%d] = %v want %v", i, dst.Data[i], want)
		}
	}
}

func TestMatMulTransAAdd(t *testing.T) {
	r := NewRNG(8)
	a := randomMatrix(r, 5, 3)
	b := randomMatrix(r, 5, 2)
	dst := randomMatrix(r, 3, 2)
	before := dst.Clone()
	MatMulTransAAdd(dst, a, b)
	prod := naiveMatMul(a.Transpose(), b)
	for i := range dst.Data {
		want := before.Data[i] + prod.Data[i]
		if math.Abs(float64(dst.Data[i]-want)) > 1e-4 {
			t.Fatalf("MatMulTransAAdd[%d] = %v want %v", i, dst.Data[i], want)
		}
	}
}

func TestAxpyDotScaleAdd(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	Axpy(2, x, y)
	want := []float32{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy result %v want %v", y, want)
		}
	}
	if d := Dot(x, want); d != 6+18+36 {
		t.Fatalf("Dot = %v want 60", d)
	}
	Scale(0.5, want)
	if want[0] != 3 || want[2] != 6 {
		t.Fatalf("Scale result %v", want)
	}
	AddTo(want, []float32{1, 1, 1})
	if want[0] != 4 {
		t.Fatalf("AddTo result %v", want)
	}
	Fill(want, 9)
	if want[1] != 9 {
		t.Fatalf("Fill result %v", want)
	}
}

func TestAxpyEmptyAndMismatch(t *testing.T) {
	Axpy(1, nil, nil) // must not panic
	if Dot(nil, nil) != 0 {
		t.Fatal("Dot(nil,nil) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Axpy length mismatch did not panic")
		}
	}()
	Axpy(1, []float32{1}, []float32{1, 2})
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if n := m.FrobeniusNorm(); math.Abs(n-5) > 1e-9 {
		t.Fatalf("FrobeniusNorm = %v want 5", n)
	}
}

// Property: (A·B)·C == A·(B·C) within float32 tolerance.
func TestQuickMatMulAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		c := randomMatrix(r, n, p)
		ab := New(m, n)
		MatMul(ab, a, b)
		abc1 := New(m, p)
		MatMul(abc1, ab, c)
		bc := New(k, p)
		MatMul(bc, b, c)
		abc2 := New(m, p)
		MatMul(abc2, a, bc)
		return abc1.MaxAbsDiff(abc2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		ab := New(m, n)
		MatMul(ab, a, b)
		btat := New(n, m)
		MatMul(btat, b.Transpose(), a.Transpose())
		return ab.Transpose().MaxAbsDiff(btat) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		seen := make([]int32, n)
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		ParallelFor(n, func(lo, hi int) {
			<-mu
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu <- struct{}{}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelForSingleWorker(t *testing.T) {
	old := Workers()
	SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	count := 0
	ParallelFor(10, func(lo, hi int) { count += hi - lo })
	if count != 10 {
		t.Fatalf("single-worker ParallelFor covered %d of 10", count)
	}
}

func TestSetMaxWorkersClampsAndRestores(t *testing.T) {
	old := Workers()
	defer SetMaxWorkers(old)
	SetMaxWorkers(0)
	if Workers() != 1 {
		t.Fatalf("SetMaxWorkers(0) should clamp to 1, got %d", Workers())
	}
	SetMaxWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
}

// TestParallelForPoolConcurrentDispatch exercises the persistent pool with
// overlapping ParallelFor calls from many goroutines (the Forward contract
// allows concurrent lookups), checking every range index is covered exactly
// once per call. Run with -race this also vets the ticket/WaitGroup
// lifecycle.
func TestParallelForPoolConcurrentDispatch(t *testing.T) {
	old := Workers()
	SetMaxWorkers(4)
	defer SetMaxWorkers(old)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				n := 97
				seen := make([]int32, n)
				ParallelFor(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
				})
				for i := range seen {
					if seen[i] != 1 {
						t.Errorf("index %d visited %d times", i, seen[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestEqualToleranceAndShape(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(1, 2, []float32{1.0005, 2})
	if !a.Equal(b, 1e-3) {
		t.Fatal("Equal should hold within tolerance")
	}
	if a.Equal(b, 1e-5) {
		t.Fatal("Equal should fail below tolerance")
	}
	if a.Equal(New(2, 1), 1) {
		t.Fatal("Equal should fail on shape mismatch")
	}
}

func TestStringAndMisc(t *testing.T) {
	m := New(2, 3)
	if m.String() == "" {
		t.Fatal("empty String()")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	m.CopyFrom(c)
	if m.At(0, 0) != 1 {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom shape mismatch did not panic")
		}
	}()
	m.CopyFrom(New(3, 2))
}

func TestMaxAbsDiffShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAbsDiff shape mismatch did not panic")
		}
	}()
	New(1, 2).MaxAbsDiff(New(2, 1))
}

func TestMatMulAddShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { MatMulAdd(New(2, 2), New(2, 3), New(4, 2)) },
		func() { MatMulAdd(New(3, 3), New(2, 3), New(3, 2)) },
		func() { MatMulTransA(New(2, 2), New(3, 2), New(4, 2)) },
		func() { MatMulTransA(New(3, 3), New(3, 2), New(3, 2)) },
		func() { MatMulTransB(New(2, 2), New(2, 3), New(4, 4)) },
		func() { MatMulTransB(New(3, 3), New(2, 3), New(4, 3)) },
		func() { MatMulTransBAdd(New(3, 3), New(2, 3), New(4, 3)) },
		func() { MatMulTransBAdd(New(2, 2), New(2, 3), New(4, 4)) },
		func() { MatMulTransAAdd(New(3, 3), New(3, 2), New(3, 2)) },
		func() { MatMulTransAAdd(New(2, 2), New(3, 2), New(4, 2)) },
		func() { MatMul(New(2, 2), New(2, 3), New(3, 3)) },
		func() { AddTo([]float32{1}, []float32{1, 2}) },
		func() { Dot([]float32{1}, []float32{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("shape mismatch did not panic")
				}
			}()
			f()
		}()
	}
}
