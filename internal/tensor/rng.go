package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**-style splitmix64 stream). Every stochastic component in the
// repository draws from an explicitly seeded RNG so experiments are
// reproducible run to run.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//elrec:invariant API contract: n must be positive
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller; one value per
// call, the pair's second half is discarded to keep state minimal).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillUniform fills x with uniform values in [-scale, scale].
func (r *RNG) FillUniform(x []float32, scale float32) {
	for i := range x {
		x[i] = (2*r.Float32() - 1) * scale
	}
}

// FillNormal fills x with normal values of the given standard deviation.
func (r *RNG) FillNormal(x []float32, std float32) {
	for i := range x {
		x[i] = float32(r.NormFloat64()) * std
	}
}

// XavierInit fills m with the Glorot/Xavier uniform initialization used by
// the DLRM reference implementation for MLP weights.
func XavierInit(m *Matrix, r *RNG) {
	scale := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	r.FillUniform(m.Data, scale)
}
