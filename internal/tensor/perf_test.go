package tensor

import (
	"runtime/debug"
	"testing"
)

// fillSeq deterministically fills x with small values.
func fillSeq(x []float32) {
	for i := range x {
		x[i] = float32(i%7) * 0.25
	}
}

// TestGemmKernelsZeroAllocSteadyState cross-checks hotalloc's static claim
// at runtime: after a warmup call (which may grow the Bᵀ pack pool), every
// gemm kernel regime runs without heap allocation.
func TestGemmKernelsZeroAllocSteadyState(t *testing.T) {
	old := Workers()
	SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	// A GC pass mid-measurement could empty the pack pool and charge the
	// refill to one run; pause collection for a stable count.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const m, k, n = 48, 32, 24 // m ≥ gemmPackMinRows: exercises the packing path
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	bt := make([]float32, n*k)
	fillSeq(a)
	fillSeq(b)
	fillSeq(bt)

	batch := make([]GemmBatch, 4)
	for i := range batch {
		batch[i] = GemmBatch{A: a[:4*8], B: b[:8*6], C: c[i*24 : i*24+24]}
	}

	kernels := []struct {
		name string
		run  func()
	}{
		{"gemmBlocked-packed", func() { gemmBlocked(m, k, n, a, b, c, false) }},
		{"gemmBlocked-streamed", func() { gemmBlocked(8, k, n, a, b, c, false) }},
		{"gemmTransABlocked", func() { gemmTransABlocked(m, k, n, a[:k*m], b, c) }},
		{"gemmTransBBlocked", func() { gemmTransBBlocked(m, k, n, a, bt, c, false) }},
		{"BatchedMatMul", func() { BatchedMatMul(4, 8, 6, batch) }},
	}
	for _, tc := range kernels {
		t.Run(tc.name, func(t *testing.T) {
			tc.run() // warmup: fills the pack pool for this shape
			allocs := testing.AllocsPerRun(20, tc.run)
			if allocs != 0 {
				t.Fatalf("steady-state %s allocated %v times per call, want 0", tc.name, allocs)
			}
		})
	}
}
