package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the approximate multiply-add count below which kernels
// stay single-threaded; goroutine dispatch costs more than it saves on tiny
// problems (the TT slice GEMMs are often only a few thousand FLOPs).
const parallelThreshold = 1 << 16

// MaxWorkers bounds the number of goroutines ParallelFor spawns. It defaults
// to GOMAXPROCS and can be lowered (e.g. by the hw package when emulating a
// weaker device).
var MaxWorkers = runtime.GOMAXPROCS(0)

// ParallelFor splits [0,n) into contiguous chunks and invokes body(lo,hi) on
// each chunk from its own goroutine, blocking until all chunks complete.
// body must be safe to run concurrently on disjoint ranges. With n <= 1 or a
// single worker the call runs inline.
func ParallelFor(n int, body func(lo, hi int)) {
	workers := MaxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
