package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the approximate multiply-add count below which kernels
// stay single-threaded; worker dispatch costs more than it saves on tiny
// problems (the TT slice GEMMs are often only a few thousand FLOPs).
const parallelThreshold = 1 << 16

// maxWorkers bounds the number of concurrent executors ParallelFor uses
// (the caller plus pool workers). Read and written atomically: the hw
// package lowers it while emulating narrower hosts concurrently with
// running kernels.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// Workers returns the current ParallelFor concurrency bound.
func Workers() int {
	return int(maxWorkers.Load())
}

// SetMaxWorkers bounds ParallelFor concurrency to n executors (minimum 1,
// meaning fully inline). Safe to call concurrently with running kernels:
// in-flight calls keep the bound they observed.
func SetMaxWorkers(n int) {
	if n < 1 {
		n = 1
	}
	maxWorkers.Store(int64(n))
}

// poolJob is one ParallelFor dispatch. Chunks are claimed by atomic ticket:
// every executor (pool workers plus the caller) increments ticket to claim
// the next contiguous chunk until the range is exhausted, so a slow chunk
// never idles the other executors.
type poolJob struct {
	body   func(lo, hi int)
	n      int
	chunk  int
	ticket atomic.Int64   // next unclaimed chunk index
	wg     sync.WaitGroup // counts unfinished chunks
}

// run claims and executes chunks until none remain. Safe to call from any
// number of goroutines; late arrivals (a worker dequeuing a finished job)
// see no tickets and return immediately.
func (j *poolJob) run() {
	for {
		t := int(j.ticket.Add(1)) - 1
		lo := t * j.chunk
		if lo >= j.n {
			return
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.body(lo, hi) //elrec:coldpath body closures are checked at their hot creation sites
		j.wg.Done()
	}
}

// poolJobs feeds the persistent workers. The buffer bounds how many offers
// a burst of ParallelFor calls can park; stale entries for completed jobs
// cost one ticket check when dequeued.
var poolJobs = make(chan *poolJob, 64)

// pool tracks the lazily-started persistent workers that replace the old
// per-call goroutine spawning.
var pool struct {
	mu      sync.Mutex
	spawned int // persistent workers started so far; guarded by mu
}

// ensureWorkers lazily tops the pool up to want persistent workers. Workers
// are never torn down: they block on poolJobs between dispatches, which is
// free, and keeping them avoids respawn churn when MaxWorkers oscillates.
//
//elrec:coldpath one-time worker-pool warm-up; steady state finds the pool already spawned
func ensureWorkers(want int) {
	pool.mu.Lock()
	for pool.spawned < want {
		pool.spawned++
		go func() {
			for j := range poolJobs {
				j.run()
			}
		}()
	}
	pool.mu.Unlock()
}

// ParallelFor splits [0,n) into contiguous chunks and invokes body(lo,hi) on
// each chunk, blocking until all chunks complete. body must be safe to run
// concurrently on disjoint ranges. With n <= 1 or a single worker the call
// runs inline. Chunks execute on a persistent worker pool; the caller
// always participates, so a saturated pool degrades to inline execution
// rather than queueing behind other dispatches, and nested ParallelFor
// calls cannot deadlock.
//
//elrec:hotpath fan-out driver for every blocked kernel
func ParallelFor(n int, body func(lo, hi int)) {
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n) //elrec:coldpath body closures are checked at their hot creation sites
		}
		return
	}
	chunk := (n + workers - 1) / workers
	numChunks := (n + chunk - 1) / chunk
	//elrec:coldpath one job header per parallel dispatch; the zero-alloc contract is the serial (workers=1) path
	j := &poolJob{body: body, n: n, chunk: chunk}
	j.wg.Add(numChunks)
	ensureWorkers(workers - 1)
offer:
	for i := 1; i < workers; i++ {
		select {
		case poolJobs <- j:
		default:
			break offer // queue full: every worker is busy, go help instead
		}
	}
	j.run()
	j.wg.Wait()
}
