package tensor

import (
	"fmt"
	"testing"
)

// gemmShapes are the adversarial dimensions the property tests sweep: zero,
// every tail-length class of the 4/2/1-row and 4-column register tiles,
// powers of two around the tile widths, and sizes crossing the k-panel.
var gemmShapes = []int{0, 1, 2, 3, 5, 7, 8, 9, 16, 17, 64, 100}

// refGemm is the obviously-correct reference: a textbook triple loop over
// logical indices. a holds A as m×k (or k×m when transA), b holds B as k×n
// (or n×k when transB); the result is freshly allocated and m×n.
func refGemm(m, k, n int, a, b []float32, transA, transB bool) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				av := a[i*k+kk]
				if transA {
					av = a[kk*m+i]
				}
				bv := b[kk*n+j]
				if transB {
					bv = b[j*k+kk]
				}
				s += float64(av) * float64(bv)
			}
			c[i*n+j] = float32(s)
		}
	}
	return c
}

// fillPattern fills x with a deterministic, sign-alternating pattern that
// includes exact zeros (to exercise the kernels' zero-skip branches).
func fillPattern(x []float32, seed int) {
	for i := range x {
		v := float32((i*7+seed*13)%11) - 5
		if (i+seed)%5 == 0 {
			v = 0
		}
		x[i] = v / 4
	}
}

func maxDiff(got, want []float32) float64 {
	var m float64
	for i := range got {
		d := float64(got[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// slack pads operand buffers beyond their logical size: the raw-buffer
// kernels promise to ignore trailing capacity.
const slack = 3

func TestGemmBlockedMatchesReference(t *testing.T) {
	for _, m := range gemmShapes {
		for _, k := range gemmShapes {
			for _, n := range gemmShapes {
				a := make([]float32, m*k+slack)
				b := make([]float32, k*n+slack)
				fillPattern(a, 1)
				fillPattern(b, 2)
				want := refGemm(m, k, n, a, b, false, false)

				c := make([]float32, m*n+slack)
				fillPattern(c, 3) // stale garbage the non-add kernel must overwrite
				gemmBlocked(m, k, n, a, b, c, false)
				if d := maxDiff(c[:m*n], want); d > 1e-3 {
					t.Fatalf("gemmBlocked %dx%dx%d: max diff %g", m, k, n, d)
				}

				// Add variant accumulates on top of a non-zero seed.
				seed := make([]float32, m*n+slack)
				fillPattern(seed, 4)
				acc := append([]float32(nil), seed...)
				gemmBlocked(m, k, n, a, b, acc, true)
				for i := range want {
					want[i] += seed[i]
				}
				if d := maxDiff(acc[:m*n], want); d > 1e-3 {
					t.Fatalf("gemmBlocked(add) %dx%dx%d: max diff %g", m, k, n, d)
				}
			}
		}
	}
}

func TestGemmTransABlockedMatchesReference(t *testing.T) {
	for _, m := range gemmShapes {
		for _, k := range gemmShapes {
			for _, n := range gemmShapes {
				a := make([]float32, k*m+slack) // stored k×m
				b := make([]float32, k*n+slack)
				fillPattern(a, 5)
				fillPattern(b, 6)
				want := refGemm(m, k, n, a, b, true, false)

				seed := make([]float32, m*n+slack)
				fillPattern(seed, 7)
				acc := append([]float32(nil), seed...)
				gemmTransABlocked(m, k, n, a, b, acc)
				for i := range want {
					want[i] += seed[i]
				}
				if d := maxDiff(acc[:m*n], want); d > 1e-3 {
					t.Fatalf("gemmTransABlocked %dx%dx%d: max diff %g", m, k, n, d)
				}
			}
		}
	}
}

func TestGemmTransBBlockedMatchesReference(t *testing.T) {
	for _, m := range gemmShapes {
		for _, k := range gemmShapes {
			for _, n := range gemmShapes {
				a := make([]float32, m*k+slack)
				b := make([]float32, n*k+slack) // stored n×k
				fillPattern(a, 8)
				fillPattern(b, 9)
				want := refGemm(m, k, n, a, b, false, true)

				c := make([]float32, m*n+slack)
				fillPattern(c, 10)
				gemmTransBBlocked(m, k, n, a, b, c, false)
				if d := maxDiff(c[:m*n], want); d > 1e-3 {
					t.Fatalf("gemmTransBBlocked %dx%dx%d: max diff %g", m, k, n, d)
				}

				seed := make([]float32, m*n+slack)
				fillPattern(seed, 11)
				acc := append([]float32(nil), seed...)
				gemmTransBBlocked(m, k, n, a, b, acc, true)
				for i := range want {
					want[i] += seed[i]
				}
				if d := maxDiff(acc[:m*n], want); d > 1e-3 {
					t.Fatalf("gemmTransBBlocked(add) %dx%dx%d: max diff %g", m, k, n, d)
				}
			}
		}
	}
}

// TestMatrixMatMulFamilyMatchesReference drives the exported Matrix-level
// wrappers (including the parallel large-shape paths) against the reference.
func TestMatrixMatMulFamilyMatchesReference(t *testing.T) {
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {9, 8, 17}, {64, 64, 64}, {100, 37, 51}, {130, 70, 90}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(m, k), New(k, n)
			fillPattern(a.Data, 12)
			fillPattern(b.Data, 13)
			want := refGemm(m, k, n, a.Data, b.Data, false, false)

			dst := New(m, n)
			MatMul(dst, a, b)
			if d := maxDiff(dst.Data, want); d > 1e-3 {
				t.Fatalf("MatMul: max diff %g", d)
			}

			at := a.Transpose() // k×m storage, logical A
			dst.Zero()
			MatMulTransA(dst, at, b)
			if d := maxDiff(dst.Data, want); d > 1e-3 {
				t.Fatalf("MatMulTransA: max diff %g", d)
			}

			bt := b.Transpose() // n×k storage, logical B
			dst.Zero()
			MatMulTransB(dst, a, bt)
			if d := maxDiff(dst.Data, want); d > 1e-3 {
				t.Fatalf("MatMulTransB: max diff %g", d)
			}

			dst.Zero()
			MatMulAdd(dst, a, b)
			MatMulAdd(dst, a, b)
			for i := range want {
				want[i] *= 2
			}
			if d := maxDiff(dst.Data, want); d > 2e-3 {
				t.Fatalf("MatMulAdd twice: max diff %g", d)
			}
		})
	}
}

func TestBatchedMatMulTransANegativeDims(t *testing.T) {
	for _, dims := range [][3]int{{-1, 2, 2}, {2, -1, 2}, {2, 2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BatchedMatMulTransA accepted negative dims %v", dims)
				}
			}()
			BatchedMatMulTransA(dims[0], dims[1], dims[2], nil)
		}()
	}
}

// ---------------------------------------------------------------------------
// Kernel benchmarks: exercised by the CI bench smoke step so the blocked
// paths stay compiled and measured.
// ---------------------------------------------------------------------------

func benchOperands(m, k, n int) (a, b, c []float32) {
	a = make([]float32, m*k)
	b = make([]float32, k*n)
	c = make([]float32, m*n)
	fillPattern(a, 21)
	fillPattern(b, 22)
	return
}

func BenchmarkGemmBlocked128(b *testing.B) {
	x, y, z := benchOperands(128, 128, 128)
	b.SetBytes(128 * 128 * 128 * 4)
	for i := 0; i < b.N; i++ {
		gemmBlocked(128, 128, 128, x, y, z, false)
	}
}

func BenchmarkGemmTransABlocked(b *testing.B) {
	x, y, z := benchOperands(128, 128, 128)
	for i := 0; i < b.N; i++ {
		gemmTransABlocked(128, 128, 128, x, y, z)
	}
}

func BenchmarkGemmTransBBlocked(b *testing.B) {
	x, y, z := benchOperands(128, 128, 128)
	for i := 0; i < b.N; i++ {
		gemmTransBBlocked(128, 128, 128, x, y, z, false)
	}
}

// BenchmarkGemmTTSlice is the TT-contraction regime: tiny panels where call
// overhead and tail handling dominate.
func BenchmarkGemmTTSlice(b *testing.B) {
	x, y, z := benchOperands(4, 16, 64)
	for i := 0; i < b.N; i++ {
		gemmBlocked(4, 16, 64, x, y, z, false)
	}
}
