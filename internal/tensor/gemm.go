package tensor

// This file holds the register-blocked, cache-tiled GEMM micro-kernels that
// every matrix product in the repository funnels through. The shapes split
// into two regimes: the MLP towers multiply large-ish row-major panels
// (hundreds × hundreds), where blocking and B-row streaming dominate, and
// the TT contractions multiply tiny slices (ranks 8–32), where per-call
// overhead dominates. The kernels therefore keep a single code path with
// small fixed register tiles (4 A-rows at a time, 2 for the dot-product
// variant) and a k-panel loop sized so the streamed B panel stays
// cache-resident; tail loops handle every odd shape exactly.
//
// Summation order is fixed by the loop structure, so results are
// deterministic run-to-run (the determinism contract of the tt/reorder
// packages); the order differs from a textbook triple loop only in that
// rows accumulate in k-panel chunks.

import "sync"

// gemmKC is the k-panel height: the B panel streamed per outer iteration is
// gemmKC×n floats, sized to stay L2-resident for the row widths the MLP
// towers use (n ≤ 1024 → ≤ 1 MB).
const gemmKC = 256

// gemmPackMinRows gates the B-transpose packing path in gemmBlocked: the
// k×n transpose cost is amortized over m output rows, so packing only pays
// once m is comfortably larger than one register tile. Below the threshold
// (the tiny TT-contraction regime) the streaming path wins on call overhead.
const gemmPackMinRows = 16

// packPool recycles Bᵀ packing scratch across gemmBlocked calls so the hot
// training path stays allocation-free in steady state. Pointers to slices
// are pooled to avoid the interface-boxing allocation on Put.
var packPool = sync.Pool{New: func() interface{} { return new([]float32) }}

// packTranspose writes bt = bᵀ where b is k×n row-major and bt is n×k.
// Blocked over both dimensions so source and destination lines stay live
// across the inner tile.
func packTranspose(bt, b []float32, k, n int) {
	const tile = 32
	for j0 := 0; j0 < n; j0 += tile {
		j1 := j0 + tile
		if j1 > n {
			j1 = n
		}
		for k0 := 0; k0 < k; k0 += tile {
			k1 := k0 + tile
			if k1 > k {
				k1 = k
			}
			for kk := k0; kk < k1; kk++ {
				brow := b[kk*n : kk*n+n]
				for j := j0; j < j1; j++ {
					bt[j*k+kk] = brow[j]
				}
			}
		}
	}
}

// gemmBlocked computes c = a·b (add=false) or c += a·b (add=true) for
// row-major buffers: a is m×k, b is k×n, c is m×n. Buffers may be longer
// than required; c must not alias a or b.
//
//elrec:hotpath register-blocked GEMM inner kernel
func gemmBlocked(m, k, n int, a, b, c []float32, add bool) {
	if !add {
		z := c[:m*n]
		for i := range z {
			z[i] = 0
		}
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// Large-m regime: pack Bᵀ once and run the register-accumulator dot
	// tile, which keeps the C tile in registers instead of doing a
	// load+store of C per multiply. The pack costs k·n writes against
	// m·k·n multiplies of work.
	if m >= gemmPackMinRows {
		pp := packPool.Get().(*[]float32)
		bt := *pp
		if cap(bt) < k*n {
			//elrec:coldpath pack-buffer growth on a pool miss; repeats reuse pooled storage
			bt = make([]float32, k*n)
		}
		bt = bt[:k*n]
		packTranspose(bt, b, k, n)
		gemmTransBBlocked(m, k, n, a, bt, c, true) // c already zeroed when !add
		*pp = bt
		packPool.Put(pp)
		return
	}
	for k0 := 0; k0 < k; k0 += gemmKC {
		k1 := k0 + gemmKC
		if k1 > k {
			k1 = k
		}
		i := 0
		// 4-row register tile: one streamed B row feeds four output rows,
		// giving four independent FMA chains per element.
		for ; i+4 <= m; i += 4 {
			c0 := c[(i+0)*n : (i+0)*n+n]
			c1 := c[(i+1)*n : (i+1)*n+n]
			c2 := c[(i+2)*n : (i+2)*n+n]
			c3 := c[(i+3)*n : (i+3)*n+n]
			for kk := k0; kk < k1; kk++ {
				a0 := a[(i+0)*k+kk]
				a1 := a[(i+1)*k+kk]
				a2 := a[(i+2)*k+kk]
				a3 := a[(i+3)*k+kk]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				brow := b[kk*n : kk*n+n]
				for j, bv := range brow {
					c0[j] += a0 * bv
					c1[j] += a1 * bv
					c2[j] += a2 * bv
					c3[j] += a3 * bv
				}
			}
		}
		for ; i+2 <= m; i += 2 {
			c0 := c[(i+0)*n : (i+0)*n+n]
			c1 := c[(i+1)*n : (i+1)*n+n]
			for kk := k0; kk < k1; kk++ {
				a0 := a[(i+0)*k+kk]
				a1 := a[(i+1)*k+kk]
				if a0 == 0 && a1 == 0 {
					continue
				}
				brow := b[kk*n : kk*n+n]
				for j, bv := range brow {
					c0[j] += a0 * bv
					c1[j] += a1 * bv
				}
			}
		}
		for ; i < m; i++ {
			c0 := c[i*n : i*n+n]
			for kk := k0; kk < k1; kk++ {
				if av := a[i*k+kk]; av != 0 {
					axpy(av, b[kk*n:kk*n+n], c0)
				}
			}
		}
	}
}

// gemmTransABlocked computes c += aᵀ·b where a is k×m row-major (so aᵀ is
// m×k), b is k×n and c is m×n. Four rows of c accumulate per pass so each
// streamed B row is read once per four outputs; the k-panel keeps the B
// panel cache-resident across row tiles.
//
//elrec:hotpath transposed-A GEMM kernel
func gemmTransABlocked(m, k, n int, a, b, c []float32) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	for k0 := 0; k0 < k; k0 += gemmKC {
		k1 := k0 + gemmKC
		if k1 > k {
			k1 = k
		}
		r := 0
		for ; r+4 <= m; r += 4 {
			c0 := c[(r+0)*n : (r+0)*n+n]
			c1 := c[(r+1)*n : (r+1)*n+n]
			c2 := c[(r+2)*n : (r+2)*n+n]
			c3 := c[(r+3)*n : (r+3)*n+n]
			for kk := k0; kk < k1; kk++ {
				a0 := a[kk*m+r+0]
				a1 := a[kk*m+r+1]
				a2 := a[kk*m+r+2]
				a3 := a[kk*m+r+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				brow := b[kk*n : kk*n+n]
				for j, bv := range brow {
					c0[j] += a0 * bv
					c1[j] += a1 * bv
					c2[j] += a2 * bv
					c3[j] += a3 * bv
				}
			}
		}
		for ; r+2 <= m; r += 2 {
			c0 := c[(r+0)*n : (r+0)*n+n]
			c1 := c[(r+1)*n : (r+1)*n+n]
			for kk := k0; kk < k1; kk++ {
				a0 := a[kk*m+r+0]
				a1 := a[kk*m+r+1]
				if a0 == 0 && a1 == 0 {
					continue
				}
				brow := b[kk*n : kk*n+n]
				for j, bv := range brow {
					c0[j] += a0 * bv
					c1[j] += a1 * bv
				}
			}
		}
		for ; r < m; r++ {
			c0 := c[r*n : r*n+n]
			for kk := k0; kk < k1; kk++ {
				if av := a[kk*m+r]; av != 0 {
					axpy(av, b[kk*n:kk*n+n], c0)
				}
			}
		}
	}
}

// gemmTransBBlocked computes c = a·bᵀ (add=false) or c += a·bᵀ (add=true)
// where a is m×k, b is n×k row-major (bᵀ is k×n) and c is m×n. Both operand
// rows are contiguous, so the kernel is a 2×4 tile of simultaneous dot
// products: two A rows against four B rows, eight independent accumulators.
//
//elrec:hotpath transposed-B GEMM kernel
func gemmTransBBlocked(m, k, n int, a, b, c []float32, add bool) {
	if !add {
		z := c[:m*n]
		for i := range z {
			z[i] = 0
		}
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		c0 := c[(i+0)*n : (i+0)*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for kk, av0 := range a0 {
				av1 := a1[kk]
				bv0, bv1, bv2, bv3 := b0[kk], b1[kk], b2[kk], b3[kk]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			c0[j+0] += s00
			c0[j+1] += s01
			c0[j+2] += s02
			c0[j+3] += s03
			c1[j+0] += s10
			c1[j+1] += s11
			c1[j+2] += s12
			c1[j+3] += s13
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			c0[j] += dot(a0, brow)
			c1[j] += dot(a1, brow)
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : i*k+k]
		c0 := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s0, s1, s2, s3 float32
			for kk, av := range arow {
				s0 += av * b0[kk]
				s1 += av * b1[kk]
				s2 += av * b2[kk]
				s3 += av * b3[kk]
			}
			c0[j+0] += s0
			c0[j+1] += s1
			c0[j+2] += s2
			c0[j+3] += s3
		}
		for ; j < n; j++ {
			c0[j] += dot(arow, b[j*k:j*k+k])
		}
	}
}
