package tensor

// Reuse returns an r×c matrix backed by m's storage when it fits, avoiding
// the steady-state allocation of the training hot path; a nil or too-small
// m allocates fresh. Contents are unspecified — callers that need zeroed
// storage must call Zero. The returned matrix aliases m's buffer.
func Reuse(m *Matrix, r, c int) *Matrix {
	if r < 0 || c < 0 {
		//elrec:invariant matrix shape contract: dimensions are validated upstream
		panic("tensor: Reuse with negative shape")
	}
	if m == nil || cap(m.Data) < r*c {
		//elrec:coldpath capacity growth; the steady state reuses m's storage
		return New(r, c)
	}
	m.Rows, m.Cols = r, c
	m.Data = m.Data[:r*c]
	return m
}
