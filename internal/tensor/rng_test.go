package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestFillUniformBounds(t *testing.T) {
	r := NewRNG(6)
	x := make([]float32, 500)
	r.FillUniform(x, 0.25)
	for _, v := range x {
		if v < -0.25 || v > 0.25 {
			t.Fatalf("FillUniform out of bounds: %v", v)
		}
	}
}

func TestXavierInitScale(t *testing.T) {
	r := NewRNG(7)
	m := New(64, 64)
	XavierInit(m, r)
	bound := float32(math.Sqrt(6.0 / 128.0))
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("XavierInit value %v outside ±%v", v, bound)
		}
	}
	// Should not be all zero.
	var nonzero int
	for _, v := range m.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatalf("XavierInit left %d of %d entries zero", len(m.Data)-nonzero, len(m.Data))
	}
}
