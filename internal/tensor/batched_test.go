package tensor

import (
	"testing"
	"testing/quick"
)

func TestBatchedMatMulMatchesSequential(t *testing.T) {
	r := NewRNG(10)
	const m, k, n = 4, 6, 5
	var batch []GemmBatch
	var want []*Matrix
	for i := 0; i < 9; i++ {
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		c := New(m, n)
		batch = append(batch, GemmBatch{A: a.Data, B: b.Data, C: c.Data})
		want = append(want, naiveMatMul(a, b))
	}
	BatchedMatMul(m, k, n, batch)
	for i, w := range want {
		got := FromSlice(m, n, batch[i].C)
		if d := got.MaxAbsDiff(w); d > 1e-4 {
			t.Fatalf("batch entry %d deviates by %v", i, d)
		}
	}
}

func TestBatchedMatMulEmptyBatch(t *testing.T) {
	BatchedMatMul(2, 2, 2, nil) // must not panic
}

func TestBatchedMatMulTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized buffer did not panic")
		}
	}()
	BatchedMatMul(2, 2, 2, []GemmBatch{{A: make([]float32, 3), B: make([]float32, 4), C: make([]float32, 4)}})
}

func TestBatchedMatMulLargeParallel(t *testing.T) {
	r := NewRNG(11)
	const m, k, n = 8, 16, 8
	var batch []GemmBatch
	var as, bs []*Matrix
	for i := 0; i < 128; i++ {
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		c := New(m, n)
		as, bs = append(as, a), append(bs, b)
		batch = append(batch, GemmBatch{A: a.Data, B: b.Data, C: c.Data})
	}
	BatchedMatMul(m, k, n, batch)
	for i := range batch {
		want := naiveMatMul(as[i], bs[i])
		if d := FromSlice(m, n, batch[i].C).MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("parallel batch entry %d deviates by %v", i, d)
		}
	}
}

func TestBatchedMatMulTransA(t *testing.T) {
	r := NewRNG(12)
	const m, k, n = 3, 7, 4 // A is k×m
	var batch []GemmBatch
	var as, bs []*Matrix
	for i := 0; i < 5; i++ {
		a := randomMatrix(r, k, m)
		b := randomMatrix(r, k, n)
		c := New(m, n)
		as, bs = append(as, a), append(bs, b)
		batch = append(batch, GemmBatch{A: a.Data, B: b.Data, C: c.Data})
	}
	BatchedMatMulTransA(m, k, n, batch)
	for i := range batch {
		want := naiveMatMul(as[i].Transpose(), bs[i])
		if d := FromSlice(m, n, batch[i].C).MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("transA batch entry %d deviates by %v", i, d)
		}
	}
}

func TestGemmIntoAndAdd(t *testing.T) {
	r := NewRNG(13)
	a := randomMatrix(r, 3, 4)
	b := randomMatrix(r, 4, 2)
	c := make([]float32, 6)
	GemmInto(3, 4, 2, a.Data, b.Data, c)
	want := naiveMatMul(a, b)
	if d := FromSlice(3, 2, c).MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("GemmInto deviates by %v", d)
	}
	// Accumulate the same product again: result should double.
	GemmAddInto(3, 4, 2, a.Data, b.Data, c)
	for i := range c {
		if diff := c[i] - 2*want.Data[i]; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("GemmAddInto[%d] = %v want %v", i, c[i], 2*want.Data[i])
		}
	}
}

func TestGemmTransAAddInto(t *testing.T) {
	r := NewRNG(14)
	a := randomMatrix(r, 5, 3) // k×m, aᵀ: 3×5
	b := randomMatrix(r, 5, 2)
	c := make([]float32, 6)
	GemmTransAAddInto(3, 5, 2, a.Data, b.Data, c)
	want := naiveMatMul(a.Transpose(), b)
	if d := FromSlice(3, 2, c).MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("GemmTransAAddInto deviates by %v", d)
	}
}

func TestGemmTransBAddInto(t *testing.T) {
	r := NewRNG(15)
	a := randomMatrix(r, 4, 3)
	b := randomMatrix(r, 2, 3) // n×k, bᵀ: 3×2
	c := make([]float32, 8)
	GemmTransBAddInto(4, 3, 2, a.Data, b.Data, c)
	want := naiveMatMul(a, b.Transpose())
	if d := FromSlice(4, 2, c).MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("GemmTransBAddInto deviates by %v", d)
	}
}

// Property: batched GEMM on random shapes agrees with Matrix MatMul.
func TestQuickBatchedAgreesWithMatMul(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		count := 1 + r.Intn(6)
		batch := make([]GemmBatch, count)
		ref := make([]*Matrix, count)
		for i := range batch {
			a := randomMatrix(r, m, k)
			b := randomMatrix(r, k, n)
			c := New(m, n)
			batch[i] = GemmBatch{A: a.Data, B: b.Data, C: c.Data}
			ref[i] = New(m, n)
			MatMul(ref[i], a, b)
		}
		BatchedMatMul(m, k, n, batch)
		for i := range batch {
			if FromSlice(m, n, batch[i].C).MaxAbsDiff(ref[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
