// Package graphx provides the weighted undirected graph and the
// modularity-based community detection (Louvain) that the paper's
// locality-based index reordering builds on (§IV-C, references [34]-[36]).
package graphx

import (
	"errors"
	"fmt"
	"sort"
)

// ErrAssignment reports a community assignment that does not match the
// graph it is evaluated against. Compare with errors.Is.
var ErrAssignment = errors.New("graphx: bad assignment")

// Graph is an undirected weighted graph over nodes 0..N-1 with support for
// accumulating parallel edges (repeated AddEdge calls sum their weights).
type Graph struct {
	n     int
	adj   []map[int]float64 // adj[u][v] = edge weight (symmetric, v != u)
	loops []float64         // self-loop weight per node
	deg   []float64         // weighted degree, accumulated in insertion order
	m     float64           // total undirected edge weight incl. self loops
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		//elrec:invariant construction contract: node counts derive from validated table sizes
		panic(fmt.Sprintf("graphx: negative node count %d", n))
	}
	return &Graph{
		n:     n,
		adj:   make([]map[int]float64, n),
		loops: make([]float64, n),
		deg:   make([]float64, n),
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// TotalWeight returns the sum of undirected edge weights (self loops counted
// once), the quantity m in the modularity definition.
func (g *Graph) TotalWeight() float64 { return g.m }

// AddEdge accumulates weight w on the undirected edge {u,v}; u == v adds a
// self loop. Weights must be positive.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		//elrec:invariant hot-path bounds contract: reorder.Build validates every index before graph construction
		panic(fmt.Sprintf("graphx: edge (%d,%d) outside %d nodes", u, v, g.n))
	}
	if w <= 0 {
		//elrec:invariant co-occurrence weights are positive by construction
		panic(fmt.Sprintf("graphx: non-positive edge weight %v", w))
	}
	if u == v {
		g.loops[u] += w
		g.deg[u] += 2 * w
		g.m += w
		return
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]float64)
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]float64)
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
	g.deg[u] += w
	g.deg[v] += w
	g.m += w
}

// EdgeWeight returns the weight of the undirected edge {u,v} (0 if absent).
func (g *Graph) EdgeWeight(u, v int) float64 {
	if u == v {
		return g.loops[u]
	}
	if g.adj[u] == nil {
		return 0
	}
	return g.adj[u][v]
}

// Degree returns the weighted degree of u: the sum of incident edge weights
// with self loops counted twice (the standard modularity convention). The
// value is accumulated at AddEdge time in insertion order, so identical
// edge sequences give bit-identical degrees — community detection must be
// deterministic because the index bijections it produces feed training.
func (g *Graph) Degree(u int) float64 { return g.deg[u] }

// Neighbors calls fn for every neighbor v of u (excluding self loops) in
// ascending node order, so graph traversals are deterministic.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	vs := make([]int, 0, len(g.adj[u]))
	//elrec:orderless keys are sorted before any order-sensitive use
	for v := range g.adj[u] {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs {
		fn(v, g.adj[u][v])
	}
}

// NumEdges returns the number of distinct undirected edges (self loops
// included).
func (g *Graph) NumEdges() int {
	cnt := 0
	for u := 0; u < g.n; u++ {
		cnt += len(g.adj[u])
		if g.loops[u] > 0 {
			cnt += 2 // counted once after halving below
		}
	}
	return cnt / 2
}

// Modularity computes Newman's modularity Q of the node→community
// assignment comm:
//
//	Q = Σ_c [ in_c/(2m) − (tot_c/(2m))² ]
//
// where in_c is twice the intra-community undirected weight (plus twice the
// self loops) and tot_c the summed degrees.
// Every accumulation visits nodes, neighbors and communities in a fixed
// order (ascending node id via Neighbors, communities in first-appearance
// order), so identical inputs give bit-identical Q — map iteration never
// reaches a float sum.
func Modularity(g *Graph, comm []int) (float64, error) {
	if len(comm) != g.n {
		return 0, fmt.Errorf("%w: assignment length %d != %d nodes", ErrAssignment, len(comm), g.n)
	}
	if g.m == 0 {
		return 0, nil
	}
	in := map[int]float64{}
	tot := map[int]float64{}
	var order []int // communities in first-appearance order
	for u := 0; u < g.n; u++ {
		cu := comm[u]
		if _, seen := tot[cu]; !seen {
			order = append(order, cu)
		}
		tot[cu] += g.Degree(u)
		in[cu] += 2 * g.loops[u]
		g.Neighbors(u, func(v int, w float64) {
			if comm[v] == cu {
				in[cu] += w // each intra edge visited from both ends
			}
		})
	}
	m2 := 2 * g.m
	var q float64
	for _, c := range order {
		q += in[c]/m2 - (tot[c]/m2)*(tot[c]/m2)
	}
	return q, nil
}
