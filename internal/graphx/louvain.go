package graphx

// Louvain runs the modularity-based community detection of Blondel et al.
// (the algorithm the paper cites for index reordering): repeated local
// moving of nodes to the neighboring community with the best modularity
// gain, followed by graph aggregation, until modularity stops improving.
// It returns a community id per node, renumbered contiguously from 0 in
// order of first appearance.
func Louvain(g *Graph) []int {
	// assignment maps original nodes to communities of the current level.
	assignment := make([]int, g.NumNodes())
	for i := range assignment {
		assignment[i] = i
	}
	work := g
	for {
		comm, improved := localMoving(work)
		if !improved {
			break
		}
		// Renumber level communities contiguously.
		remap := map[int]int{}
		for _, c := range comm {
			if _, ok := remap[c]; !ok {
				remap[c] = len(remap)
			}
		}
		for u := range comm {
			comm[u] = remap[comm[u]]
		}
		// Project onto the original nodes.
		for i := range assignment {
			assignment[i] = comm[assignment[i]]
		}
		if len(remap) == work.NumNodes() {
			break // no aggregation happened; fixed point
		}
		work = aggregate(work, comm, len(remap))
	}
	// Final contiguous renumbering over original nodes.
	remap := map[int]int{}
	for i, c := range assignment {
		nc, ok := remap[c]
		if !ok {
			nc = len(remap)
			remap[c] = nc
		}
		assignment[i] = nc
	}
	return assignment
}

// localMoving performs Louvain phase 1 on g: greedy node moves until no move
// improves modularity. Returns the assignment and whether any move happened.
func localMoving(g *Graph) (comm []int, improved bool) {
	n := g.NumNodes()
	comm = make([]int, n)
	commTot := make([]float64, n) // Σ degrees per community
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		comm[u] = u
		deg[u] = g.Degree(u)
		commTot[u] = deg[u]
	}
	m2 := 2 * g.TotalWeight()
	if m2 == 0 {
		return comm, false
	}

	neighWeight := make(map[int]float64)
	var cands []int
	for pass := 0; pass < 32; pass++ {
		moves := 0
		for u := 0; u < n; u++ {
			cu := comm[u]
			// Weights from u into each neighboring community. Candidates
			// are visited in ascending community id so tie-breaking (and
			// therefore the final partition) is deterministic.
			clear(neighWeight)
			cands = cands[:0]
			g.Neighbors(u, func(v int, w float64) {
				c := comm[v]
				if _, ok := neighWeight[c]; !ok {
					cands = append(cands, c)
				}
				neighWeight[c] += w
			})
			sortInts(cands)
			// Remove u from its community.
			commTot[cu] -= deg[u]
			// Gain of joining community c: k_{u,c}/m − tot_c·k_u/(2m²);
			// compare against rejoining cu.
			best, bestGain := cu, neighWeight[cu]-commTot[cu]*deg[u]/m2
			for _, c := range cands {
				if c == cu {
					continue
				}
				gain := neighWeight[c] - commTot[c]*deg[u]/m2
				if gain > bestGain+1e-12 {
					best, bestGain = c, gain
				}
			}
			commTot[best] += deg[u]
			if best != cu {
				comm[u] = best
				moves++
			}
		}
		if moves == 0 {
			break
		}
		improved = true
	}
	return comm, improved
}

// sortInts sorts a small int slice (insertion sort: candidate lists are
// typically tiny).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// aggregate builds the level graph: one node per community, intra-community
// weight becomes a self loop, inter-community weights sum.
func aggregate(g *Graph, comm []int, numComm int) *Graph {
	out := NewGraph(numComm)
	for u := 0; u < g.NumNodes(); u++ {
		cu := comm[u]
		if w := g.EdgeWeight(u, u); w > 0 {
			out.AddEdge(cu, cu, w)
		}
		g.Neighbors(u, func(v int, w float64) {
			if u < v { // visit each undirected edge once
				cv := comm[v]
				if cu == cv {
					out.AddEdge(cu, cu, w)
				} else {
					out.AddEdge(cu, cv, w)
				}
			}
		})
	}
	return out
}
