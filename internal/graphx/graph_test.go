package graphx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// mustQ evaluates Modularity, failing the test on an assignment error.
func mustQ(t *testing.T, g *Graph, comm []int) float64 {
	t.Helper()
	q, err := Modularity(g, comm)
	if err != nil {
		t.Fatalf("Modularity: %v", err)
	}
	return q
}

func TestAddEdgeAccumulates(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 2)
	if w := g.EdgeWeight(0, 1); w != 3 {
		t.Fatalf("accumulated weight %v want 3", w)
	}
	if g.TotalWeight() != 3 {
		t.Fatalf("TotalWeight %v want 3", g.TotalWeight())
	}
}

func TestSelfLoop(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0, 2)
	if g.EdgeWeight(0, 0) != 2 {
		t.Fatal("self loop weight wrong")
	}
	if d := g.Degree(0); d != 4 {
		t.Fatalf("self loop degree %v want 4 (counted twice)", d)
	}
}

func TestDegreeSum(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	var total float64
	for u := 0; u < 4; u++ {
		total += g.Degree(u)
	}
	if total != 2*g.TotalWeight() {
		t.Fatalf("Σdeg = %v want %v", total, 2*g.TotalWeight())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(2)
	for _, c := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 2, 1) },
		func() { g.AddEdge(0, 1, 0) },
		func() { g.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid AddEdge did not panic")
				}
			}()
			c()
		}()
	}
}

func TestNumEdges(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1) // parallel: same edge
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 1, 1)
	if n := g.NumEdges(); n != 3 {
		t.Fatalf("NumEdges = %d want 3", n)
	}
}

func TestModularityAllOneCommunityIsZero(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	comm := []int{0, 0, 0, 0}
	if q := mustQ(t, g, comm); math.Abs(q) > 1e-12 {
		t.Fatalf("single community Q = %v want 0", q)
	}
}

func TestModularityPerfectSplit(t *testing.T) {
	// Two disconnected cliques split correctly: Q = 1/2.
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdge(e[0], e[1], 1)
	}
	comm := []int{0, 0, 0, 1, 1, 1}
	if q := mustQ(t, g, comm); math.Abs(q-0.5) > 1e-9 {
		t.Fatalf("perfect split Q = %v want 0.5", q)
	}
	// Bad split must be worse.
	bad := []int{0, 1, 0, 1, 0, 1}
	if mustQ(t, g, bad) >= 0.5 {
		t.Fatal("bad split not worse than perfect split")
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := NewGraph(3)
	if q := mustQ(t, g, []int{0, 1, 2}); q != 0 {
		t.Fatalf("empty graph Q = %v", q)
	}
}

func TestModularityLengthError(t *testing.T) {
	g := NewGraph(3)
	if _, err := Modularity(g, []int{0}); !errors.Is(err, ErrAssignment) {
		t.Fatalf("wrong assignment length: got %v, want ErrAssignment", err)
	}
}

func TestLouvainTwoCliques(t *testing.T) {
	g := NewGraph(8)
	clique := func(nodes []int) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				g.AddEdge(nodes[i], nodes[j], 1)
			}
		}
	}
	clique([]int{0, 1, 2, 3})
	clique([]int{4, 5, 6, 7})
	g.AddEdge(3, 4, 0.1) // weak bridge

	comm := Louvain(g)
	if comm[0] != comm[1] || comm[1] != comm[2] || comm[2] != comm[3] {
		t.Fatalf("first clique split: %v", comm)
	}
	if comm[4] != comm[5] || comm[5] != comm[6] || comm[6] != comm[7] {
		t.Fatalf("second clique split: %v", comm)
	}
	if comm[0] == comm[4] {
		t.Fatalf("cliques merged: %v", comm)
	}
}

func TestLouvainEmptyAndSingleton(t *testing.T) {
	if got := Louvain(NewGraph(0)); len(got) != 0 {
		t.Fatal("empty graph nonzero assignment")
	}
	got := Louvain(NewGraph(3)) // no edges: every node its own community
	seen := map[int]bool{}
	for _, c := range got {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("edgeless graph communities: %v", got)
	}
}

func TestLouvainImprovesModularity(t *testing.T) {
	// Random graph with planted partition: Louvain's Q must beat the
	// trivial all-singletons and all-one-community assignments.
	r := tensor.NewRNG(1)
	const n, groups = 60, 4
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameGroup := i%groups == j%groups
			p := 0.02
			if sameGroup {
				p = 0.5
			}
			if r.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	comm := Louvain(g)
	q := mustQ(t, g, comm)

	single := make([]int, n)
	for i := range single {
		single[i] = i
	}
	one := make([]int, n)
	if q <= mustQ(t, g, single) || q <= mustQ(t, g, one) {
		t.Fatalf("Louvain Q=%v no better than trivial assignments", q)
	}
	// Should recover (approximately) the planted structure: Q of the true
	// partition is a strong assignment; Louvain should reach at least 80%.
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i % groups
	}
	if qt := mustQ(t, g, truth); q < 0.8*qt {
		t.Fatalf("Louvain Q=%v far below planted Q=%v", q, qt)
	}
}

func TestLouvainAssignmentContiguous(t *testing.T) {
	g := NewGraph(10)
	for i := 0; i < 9; i++ {
		g.AddEdge(i, i+1, 1)
	}
	comm := Louvain(g)
	maxC := 0
	seen := map[int]bool{}
	for _, c := range comm {
		if c < 0 {
			t.Fatalf("negative community id in %v", comm)
		}
		if c > maxC {
			maxC = c
		}
		seen[c] = true
	}
	if len(seen) != maxC+1 {
		t.Fatalf("community ids not contiguous: %v", comm)
	}
}

// Property: Louvain always returns a valid contiguous partition and never
// decreases modularity below the single-community baseline (0).
func TestQuickLouvainValidPartition(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 2 + r.Intn(30)
		g := NewGraph(n)
		edges := r.Intn(60)
		for e := 0; e < edges; e++ {
			u, v := r.Intn(n), r.Intn(n)
			g.AddEdge(u, v, 1+r.Float64())
		}
		comm := Louvain(g)
		if len(comm) != n {
			return false
		}
		maxC := -1
		seen := map[int]bool{}
		for _, c := range comm {
			if c < 0 {
				return false
			}
			if c > maxC {
				maxC = c
			}
			seen[c] = true
		}
		if len(seen) != maxC+1 {
			return false
		}
		q, err := Modularity(g, comm)
		return err == nil && q >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLouvainDeterministic: identical graphs must produce identical
// partitions run after run — the bijections built on top feed training, so
// any map-iteration nondeterminism here silently changes experiments.
func TestLouvainDeterministic(t *testing.T) {
	build := func() *Graph {
		r := tensor.NewRNG(99)
		g := NewGraph(80)
		for e := 0; e < 400; e++ {
			u, v := r.Intn(80), r.Intn(80)
			g.AddEdge(u, v, 1+r.Float64())
		}
		return g
	}
	a := Louvain(build())
	for trial := 0; trial < 5; trial++ {
		b := Louvain(build())
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: Louvain nondeterministic at node %d (%d vs %d)", trial, i, a[i], b[i])
			}
		}
	}
}
