// Command elrec-data inspects the synthetic datasets: Table II statistics
// and the Figure 4 access-pattern characteristics the Eff-TT optimizations
// exploit.
//
// Usage:
//
//	elrec-data                          # Table II + Figure 4(a) + 4(b)
//	elrec-data -exp fig4a -scale quick
//	elrec-data -exp table2 -dataset-scale 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exps         = flag.String("exp", "table2,fig4a,fig4b", "comma-separated: table2, fig4a, fig4b")
		scaleName    = flag.String("scale", "default", "base scale: quick or default")
		datasetScale = flag.Float64("dataset-scale", 0, "override: dataset cardinality multiplier")
		batch        = flag.Int("batch", 0, "override: batch size for the statistics")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "default":
		sc = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or default)\n", *scaleName)
		os.Exit(2)
	}
	if *datasetScale > 0 {
		sc.DatasetScale = *datasetScale
	}
	if *batch > 0 {
		sc.Batch = *batch
	}

	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(id)
		switch id {
		case "table2", "fig4a", "fig4b":
		default:
			fmt.Fprintf(os.Stderr, "elrec-data handles table2, fig4a and fig4b; %q is not a dataset experiment (see elrec-bench)\n", id)
			os.Exit(2)
		}
		res, err := bench.Run(id, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Fprint(os.Stdout)
		fmt.Println()
	}
}
