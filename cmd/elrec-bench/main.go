// Command elrec-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	elrec-bench -exp fig11                 # one experiment
//	elrec-bench -exp fig17,fig18           # several
//	elrec-bench -exp all -scale quick      # full sweep, small
//	elrec-bench -exp fig14 -dataset-scale 0.02 -batch 4096 -rank 32
//
// Every experiment prints the same rows/series the paper reports plus notes
// recording the parameters and the paper's reference numbers. Alongside the
// stdout tables, each experiment writes a machine-readable BENCH_<id>.json
// artifact into -json-dir (config, rows, elapsed time, and a metrics
// snapshot of the systems the experiment built) so perf trajectories can
// accumulate across commits; an empty -json-dir disables the artifacts.
// -debug-addr serves /metrics, /trace and pprof while the sweep runs; the
// registry is reset at the start of each experiment, so the endpoint and
// the artifact both report the experiment in progress.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/hw"
	"repro/internal/obs"
)

// artifact is the BENCH_<id>.json schema: everything the stdout table
// shows, machine-readable, plus the scale and the instruments of the
// systems the experiment built.
type artifact struct {
	ID        string       `json:"id"`
	Title     string       `json:"title"`
	Scale     bench.Scale  `json:"scale"`
	Header    []string     `json:"header"`
	Rows      [][]string   `json:"rows"`
	Notes     []string     `json:"notes"`
	ElapsedMS int64        `json:"elapsed_ms"`
	Metrics   obs.Snapshot `json:"metrics"`
}

func main() {
	var (
		exps         = flag.String("exp", "all", "comma-separated experiment ids, or 'all' (known: "+strings.Join(bench.List(), ", ")+")")
		scaleName    = flag.String("scale", "default", "base scale: quick or default")
		datasetScale = flag.Float64("dataset-scale", 0, "override: dataset cardinality multiplier")
		batch        = flag.Int("batch", 0, "override: batch size")
		steps        = flag.Int("steps", 0, "override: measured steps per configuration")
		dim          = flag.Int("dim", 0, "override: embedding dimension")
		rank         = flag.Int("rank", 0, "override: TT rank")
		trainSteps   = flag.Int("train-steps", 0, "override: steps for accuracy/convergence experiments")
		jsonDir      = flag.String("json-dir", ".", "directory for BENCH_<id>.json artifacts ('' disables)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics and pprof on this address while the sweep runs")
		workers      = flag.Int("workers", 0, "bound host-side kernel parallelism (0 keeps GOMAXPROCS)")
		compare      = flag.Bool("compare", false, "compare two BENCH_<id>.json artifacts: elrec-bench -compare old.json new.json")
		lookahead    = flag.Int("lookahead", -1, "override: pipeline lookahead window for pipecache (0 disables planning, -1 keeps the scale default)")
		failAbove    = flag.Float64("fail-above", -1, "with -compare: exit nonzero when any tracked hot-path metric regresses by more than this percentage")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: elrec-bench -compare [-fail-above pct] old.json new.json")
			os.Exit(2)
		}
		if err := compareArtifacts(os.Stdout, flag.Arg(0), flag.Arg(1), *failAbove); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *workers > 0 {
		hw.SetHostWorkers(*workers)
	}

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "default":
		sc = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or default)\n", *scaleName)
		os.Exit(2)
	}
	if *datasetScale > 0 {
		sc.DatasetScale = *datasetScale
	}
	if *batch > 0 {
		sc.Batch = *batch
	}
	if *steps > 0 {
		sc.Steps = *steps
	}
	if *dim > 0 {
		sc.EmbDim = *dim
	}
	if *rank > 0 {
		sc.Rank = *rank
	}
	if *trainSteps > 0 {
		sc.TrainSteps = *trainSteps
	}
	if *lookahead >= 0 {
		sc.Lookahead = *lookahead
	}

	reg := obs.NewRegistry()
	sc.Metrics = reg
	if *debugAddr != "" {
		dbg, err := obs.Serve(*debugAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint up on %s\n", dbg.Addr())
	}

	ids := bench.List()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		reg.Reset()
		start := time.Now()
		res, err := bench.Run(id, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		res.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonDir != "" {
			if err := writeArtifact(*jsonDir, res, sc, elapsed, reg.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// readArtifact loads one BENCH_<id>.json file.
func readArtifact(path string) (*artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench compare: %w", err)
	}
	var a artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("bench compare %s: %w", path, err)
	}
	return &a, nil
}

// numCell parses a numeric table cell, stripping the unit suffixes the
// bench tables use ("/s", "x", "%", "M").
func numCell(s string) (float64, bool) {
	for _, suf := range []string{"/s", "x", "%", "M"} {
		s = strings.TrimSuffix(s, suf)
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// metricDirection classifies a metric row by name for regression gating:
// +1 when larger values are better (hit rates, throughput), -1 when smaller
// values are better (times, transfer volume, evictions, losses), 0 when the
// metric is informational and not gated.
func metricDirection(name string) int {
	n := strings.ToLower(name)
	for _, frag := range []string{"hit", "rate", "steps_per", "/s", "throughput", "speedup"} {
		if strings.Contains(n, frag) {
			return 1
		}
	}
	for _, frag := range []string{"_ms", "_ns", "time", "stall", "wait", "bytes", "evict", "miss", "loss"} {
		if strings.Contains(n, frag) {
			return -1
		}
	}
	return 0
}

// compareArtifacts prints per-metric deltas between two artifacts of the
// same experiment. Rows are matched by their first cell (the metric name);
// numeric cells get old/new/delta columns, and rows present in only one
// artifact are reported as added/removed. With failAbove ≥ 0, any tracked
// hot-path metric (see metricDirection) that regresses by more than that
// percentage turns the comparison into an error — the CI regression gate.
func compareArtifacts(w io.Writer, oldPath, newPath string, failAbove float64) error {
	oldA, err := readArtifact(oldPath)
	if err != nil {
		return err
	}
	newA, err := readArtifact(newPath)
	if err != nil {
		return err
	}
	if oldA.ID != newA.ID {
		fmt.Fprintf(w, "warning: comparing different experiments (%s vs %s)\n", oldA.ID, newA.ID)
	}
	fmt.Fprintf(w, "== compare %s: %s -> %s ==\n", oldA.ID, oldPath, newPath)
	oldRows := make(map[string][]string, len(oldA.Rows))
	matched := make(map[string]bool, len(oldA.Rows))
	for _, r := range oldA.Rows {
		if len(r) > 0 {
			oldRows[r[0]] = r
		}
	}
	var regressions []string
	for _, nr := range newA.Rows {
		if len(nr) == 0 {
			continue
		}
		or, ok := oldRows[nr[0]]
		if !ok {
			fmt.Fprintf(w, "%-24s (added)\n", nr[0])
			continue
		}
		matched[nr[0]] = true
		fmt.Fprintf(w, "%-24s", nr[0])
		dir := metricDirection(nr[0])
		for col := 1; col < len(nr) && col < len(or); col++ {
			ov, oldNum := numCell(or[col])
			nv, newNum := numCell(nr[col])
			name := fmt.Sprintf("col%d", col)
			if col < len(newA.Header) {
				name = newA.Header[col]
			}
			if !oldNum || !newNum {
				if or[col] != nr[col] {
					fmt.Fprintf(w, "  %s: %s -> %s", name, or[col], nr[col])
				}
				continue
			}
			pct := 0.0
			if ov != 0 {
				pct = (nv - ov) / ov * 100
			}
			fmt.Fprintf(w, "  %s: %.2f -> %.2f (%+.1f%%)", name, ov, nv, pct)
			if failAbove >= 0 && dir != 0 && ov != 0 {
				// A regression is movement against the metric's direction.
				worse := -float64(dir) * pct
				if worse > failAbove {
					regressions = append(regressions,
						fmt.Sprintf("%s %s %.2f -> %.2f (%+.1f%%)", nr[0], name, ov, nv, pct))
				}
			}
		}
		fmt.Fprintln(w)
	}
	for _, r := range oldA.Rows {
		if len(r) > 0 && !matched[r[0]] {
			fmt.Fprintf(w, "%-24s (removed)\n", r[0])
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench compare: %d metric(s) regressed beyond %.1f%%:\n  %s",
			len(regressions), failAbove, strings.Join(regressions, "\n  "))
	}
	return nil
}

// writeArtifact serializes one experiment's result as BENCH_<id>.json.
func writeArtifact(dir string, res *bench.Result, sc bench.Scale, elapsed time.Duration, snap obs.Snapshot) error {
	a := artifact{
		ID:        res.ID,
		Title:     res.Title,
		Scale:     sc,
		Header:    res.Header,
		Rows:      res.Rows,
		Notes:     res.Notes,
		ElapsedMS: elapsed.Milliseconds(),
		Metrics:   snap,
	}
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("bench artifact %s: %w", res.ID, err)
	}
	path := filepath.Join(dir, "BENCH_"+res.ID+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench artifact: %w", err)
	}
	return nil
}
