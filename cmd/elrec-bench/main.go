// Command elrec-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	elrec-bench -exp fig11                 # one experiment
//	elrec-bench -exp fig17,fig18           # several
//	elrec-bench -exp all -scale quick      # full sweep, small
//	elrec-bench -exp fig14 -dataset-scale 0.02 -batch 4096 -rank 32
//
// Every experiment prints the same rows/series the paper reports plus notes
// recording the parameters and the paper's reference numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exps         = flag.String("exp", "all", "comma-separated experiment ids, or 'all' (known: "+strings.Join(bench.List(), ", ")+")")
		scaleName    = flag.String("scale", "default", "base scale: quick or default")
		datasetScale = flag.Float64("dataset-scale", 0, "override: dataset cardinality multiplier")
		batch        = flag.Int("batch", 0, "override: batch size")
		steps        = flag.Int("steps", 0, "override: measured steps per configuration")
		dim          = flag.Int("dim", 0, "override: embedding dimension")
		rank         = flag.Int("rank", 0, "override: TT rank")
		trainSteps   = flag.Int("train-steps", 0, "override: steps for accuracy/convergence experiments")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "default":
		sc = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or default)\n", *scaleName)
		os.Exit(2)
	}
	if *datasetScale > 0 {
		sc.DatasetScale = *datasetScale
	}
	if *batch > 0 {
		sc.Batch = *batch
	}
	if *steps > 0 {
		sc.Steps = *steps
	}
	if *dim > 0 {
		sc.EmbDim = *dim
	}
	if *rank > 0 {
		sc.Rank = *rank
	}
	if *trainSteps > 0 {
		sc.TrainSteps = *trainSteps
	}

	ids := bench.List()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := bench.Run(id, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
