// Command elrec-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	elrec-bench -exp fig11                 # one experiment
//	elrec-bench -exp fig17,fig18           # several
//	elrec-bench -exp all -scale quick      # full sweep, small
//	elrec-bench -exp fig14 -dataset-scale 0.02 -batch 4096 -rank 32
//
// Every experiment prints the same rows/series the paper reports plus notes
// recording the parameters and the paper's reference numbers. Alongside the
// stdout tables, each experiment writes a machine-readable BENCH_<id>.json
// artifact into -json-dir (config, rows, elapsed time, and a metrics
// snapshot of the systems the experiment built) so perf trajectories can
// accumulate across commits; an empty -json-dir disables the artifacts.
// -debug-addr serves /metrics, /trace and pprof while the sweep runs; the
// registry is reset at the start of each experiment, so the endpoint and
// the artifact both report the experiment in progress.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

// artifact is the BENCH_<id>.json schema: everything the stdout table
// shows, machine-readable, plus the scale and the instruments of the
// systems the experiment built.
type artifact struct {
	ID        string       `json:"id"`
	Title     string       `json:"title"`
	Scale     bench.Scale  `json:"scale"`
	Header    []string     `json:"header"`
	Rows      [][]string   `json:"rows"`
	Notes     []string     `json:"notes"`
	ElapsedMS int64        `json:"elapsed_ms"`
	Metrics   obs.Snapshot `json:"metrics"`
}

func main() {
	var (
		exps         = flag.String("exp", "all", "comma-separated experiment ids, or 'all' (known: "+strings.Join(bench.List(), ", ")+")")
		scaleName    = flag.String("scale", "default", "base scale: quick or default")
		datasetScale = flag.Float64("dataset-scale", 0, "override: dataset cardinality multiplier")
		batch        = flag.Int("batch", 0, "override: batch size")
		steps        = flag.Int("steps", 0, "override: measured steps per configuration")
		dim          = flag.Int("dim", 0, "override: embedding dimension")
		rank         = flag.Int("rank", 0, "override: TT rank")
		trainSteps   = flag.Int("train-steps", 0, "override: steps for accuracy/convergence experiments")
		jsonDir      = flag.String("json-dir", ".", "directory for BENCH_<id>.json artifacts ('' disables)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics and pprof on this address while the sweep runs")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "default":
		sc = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or default)\n", *scaleName)
		os.Exit(2)
	}
	if *datasetScale > 0 {
		sc.DatasetScale = *datasetScale
	}
	if *batch > 0 {
		sc.Batch = *batch
	}
	if *steps > 0 {
		sc.Steps = *steps
	}
	if *dim > 0 {
		sc.EmbDim = *dim
	}
	if *rank > 0 {
		sc.Rank = *rank
	}
	if *trainSteps > 0 {
		sc.TrainSteps = *trainSteps
	}

	reg := obs.NewRegistry()
	sc.Metrics = reg
	if *debugAddr != "" {
		dbg, err := obs.Serve(*debugAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint up on %s\n", dbg.Addr())
	}

	ids := bench.List()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		reg.Reset()
		start := time.Now()
		res, err := bench.Run(id, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		res.Fprint(os.Stdout)
		fmt.Printf("(%s regenerated in %v)\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonDir != "" {
			if err := writeArtifact(*jsonDir, res, sc, elapsed, reg.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// writeArtifact serializes one experiment's result as BENCH_<id>.json.
func writeArtifact(dir string, res *bench.Result, sc bench.Scale, elapsed time.Duration, snap obs.Snapshot) error {
	a := artifact{
		ID:        res.ID,
		Title:     res.Title,
		Scale:     sc,
		Header:    res.Header,
		Rows:      res.Rows,
		Notes:     res.Notes,
		ElapsedMS: elapsed.Milliseconds(),
		Metrics:   snap,
	}
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("bench artifact %s: %w", res.ID, err)
	}
	path := filepath.Join(dir, "BENCH_"+res.ID+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench artifact: %w", err)
	}
	return nil
}
