// Command elrec-serve runs the EL-Rec serving front end: a replica-pooled,
// admission-controlled ranking service over a trained DLRM. Compressed
// Eff-TT tables keep the model small enough to replicate on every node, so
// the pool clones it -replicas ways and serves concurrent traffic with no
// shared mutable state.
//
// The binary either loads a model saved by `elrec-train -save` (pass -load
// with the same architecture flags) or, by default, trains a small model on
// a synthetic dataset at startup — enough for demos, smoke tests and load
// experiments without a checkpoint lying around.
//
// Usage:
//
//	elrec-serve -addr localhost:8080 -replicas 4
//	elrec-serve -load model.bin -dataset kaggle -dim 16 -rank 8
//
// Endpoints (JSON):
//
//	POST /score   {"dense":[...],"sparse":[...],"candidates":[...]}
//	              → {"scores":[...]}               calibrated CTR per candidate
//	POST /topk    same body plus "k"
//	              → {"items":[{"item":i,"score":s},...]} ranked top-k
//	POST /reload  {"path":"model.bin"} (empty body: the -load path)
//	              → {"version":n}       hot-swap a new checkpoint, zero drops
//	GET  /healthz process liveness (always 200 while the server runs)
//	GET  /readyz  200 when serving a stable model version, 503 mid-swap
//	GET  /metrics registry snapshot (serve_* instruments + model_version)
//	GET  /debug/pprof/  runtime profiles
//
// A continuously retraining trainer pairs with /reload: it checkpoints with
// `elrec-train -save` (or this binary's -save after startup training) and
// POSTs /reload; the pool rebuilds every replica from the checkpoint bytes
// and swaps them in at micro-batch boundaries, so serving never aliases
// trainer memory and no request is dropped.
//
// Overload sheds with 503 (queue full), expired requests with 504; send
// "timeout_ms" in the body to override the default per-request deadline.
// SIGINT/SIGTERM drains gracefully: admission stops, queued requests finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	elrec "repro"
	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/obs"
	"repro/internal/served"
	"repro/internal/tt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address (use :0 for an ephemeral port)")
		replicas  = flag.Int("replicas", 4, "model replicas (concurrent scoring workers)")
		queue     = flag.Int("queue", 256, "admission queue depth; a full queue sheds with 503")
		coalesce  = flag.Int("coalesce", 8, "max requests merged into one micro-batch")
		timeoutMS = flag.Int("timeout-ms", 0, "default per-request deadline in milliseconds (0: none)")
		itemFeat  = flag.Int("item-feature", -1, "sparse feature carrying the candidate item id (-1: largest table)")
		scoreBat  = flag.Int("score-batch", 64, "rows per scoring forward pass")

		dataset      = flag.String("dataset", "terabyte", "dataset preset: avazu, kaggle or terabyte")
		datasetScale = flag.Float64("dataset-scale", 0.002, "dataset cardinality multiplier")
		steps        = flag.Int("steps", 200, "startup training steps (ignored with -load)")
		batch        = flag.Int("batch", 256, "startup training batch size")
		dim          = flag.Int("dim", 16, "embedding dimension")
		rank         = flag.Int("rank", 8, "TT rank")
		lr           = flag.Float64("lr", 1.0, "learning rate for startup training")
		ttThreshold  = flag.Int("tt-threshold", 10_000, "min rows for TT compression (-1 disables)")
		loadPath     = flag.String("load", "", "load model weights saved by elrec-train -save instead of training")
		savePath     = flag.String("save", "", "save the startup-trained model to this checkpoint (ignored with -load)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := obs.NewLogger(os.Stderr, level, nil)

	spec, err := specFor(*dataset, *datasetScale)
	if err != nil {
		log.Error("invalid flags", "err", err)
		return 2
	}

	// The factory rebuilds the serving architecture from flags; every
	// checkpoint load (-load at startup, POST /reload afterwards)
	// materializes into a fresh skeleton it returns, so the pool never
	// aliases another process's (or the startup trainer's) memory.
	factory := func() (*dlrm.Model, error) {
		return buildModel(spec, *dim, *rank, *ttThreshold, float32(*lr))
	}
	item := *itemFeat
	if item < 0 {
		item = largestFeature(spec)
	}
	reg := obs.NewRegistry()
	opts := served.Options{
		Replicas:    *replicas,
		QueueDepth:  *queue,
		MaxCoalesce: *coalesce,
		Timeout:     time.Duration(*timeoutMS) * time.Millisecond,
		Metrics:     reg,
		Factory:     factory,
	}

	var pool *served.Pool
	if *loadPath != "" {
		pool, err = served.NewFromCheckpoint(*loadPath, item, *scoreBat, opts)
		if err != nil {
			log.Error("load failed", "path", *loadPath, "err", err)
			return 1
		}
		log.Info("model loaded", "path", *loadPath)
	} else {
		model, err := factory()
		if err != nil {
			log.Error("model build failed", "err", err)
			return 1
		}
		d, err := data.New(spec)
		if err != nil {
			log.Error("dataset failed", "err", err)
			return 1
		}
		start := time.Now()
		var loss float32
		for it := 0; it < *steps; it++ {
			loss = model.TrainStep(d.Batch(it, *batch))
		}
		log.Info("startup training done", "steps", *steps, "final_loss", loss,
			"elapsed", time.Since(start).Round(time.Millisecond))
		if *savePath != "" {
			if err := elrec.SaveModel(*savePath, model); err != nil {
				log.Error("save failed", "path", *savePath, "err", err)
				return 1
			}
			log.Info("model saved", "path", *savePath)
		}
		log.Info("serving model", "dataset", spec.Name, "tables", len(model.Tables),
			"item_feature", item, "embedding_mb", float64(model.EmbeddingBytes())/1e6)
		pool, err = served.New(model, item, *scoreBat, opts)
		if err != nil {
			log.Error("pool build failed", "err", err)
			return 1
		}
	}

	mux := http.NewServeMux()
	api := pool.Handler()
	mux.Handle("/score", api)
	mux.Handle("/topk", api)
	mux.Handle("/reload", api)
	mux.Handle("/healthz", api)
	mux.Handle("/readyz", api)
	mux.Handle("/", obs.Handler(reg, nil))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Info("serving", "addr", ln.Addr().String(), "replicas", pool.Replicas(),
		"queue", *queue, "coalesce", *coalesce)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Info("draining", "signal", s.String())
	case err := <-errc:
		log.Error("server failed", "err", err)
		pool.Close()
		return 1
	}
	// Graceful shutdown, bounded: admission stops immediately, in-flight
	// HTTP requests get a few seconds to finish, stragglers are cut. The
	// pool then drains whatever was already admitted.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		_ = srv.Close()
	}
	cancel()
	pool.Close()
	snap := reg.Snapshot()
	log.Info("drained", "requests", snap.Counter("serve_requests"),
		"errors", snap.Counter("serve_errors"),
		"shed_overload", snap.Counter("serve_shed_overload"),
		"shed_deadline", snap.Counter("serve_shed_deadline"))
	return 0
}

// buildModel constructs the DLRM skeleton for spec (tables + towers) without
// training it.
func buildModel(spec data.Spec, dim, rank, ttThreshold int, lr float32) (*dlrm.Model, error) {
	tables, _, err := dlrm.BuildTables(spec.TableRows, dlrm.TableSpec{
		Dim: dim, Rank: rank, TTThreshold: ttThreshold, Opts: tt.EffOptions(), Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := dlrm.DefaultConfig(spec.NumDense, dim)
	cfg.LR = lr
	cfg.Seed = spec.Seed + 1
	return dlrm.NewModel(cfg, tables)
}

// largestFeature picks the highest-cardinality sparse feature as the item
// feature — the candidate-item table in every preset. Decided from the
// dataset spec, not a model instance, because the pool may rebuild its model
// from checkpoints the binary never holds directly.
func largestFeature(spec data.Spec) int {
	best := 0
	for i, rows := range spec.TableRows {
		if rows > spec.TableRows[best] {
			best = i
		}
	}
	return best
}

func specFor(name string, scale float64) (data.Spec, error) {
	switch name {
	case "avazu":
		return data.AvazuSpec(scale), nil
	case "kaggle":
		return data.KaggleSpec(scale), nil
	case "terabyte":
		return data.TerabyteSpec(scale), nil
	}
	return data.Spec{}, fmt.Errorf("unknown dataset %q (want avazu, kaggle or terabyte)", name)
}
