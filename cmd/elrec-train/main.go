// Command elrec-train trains a full EL-Rec system end to end on one of the
// synthetic datasets and reports the loss curve, held-out accuracy/AUC, and
// the placement/compression summary as structured key=value log lines.
//
// Usage:
//
//	elrec-train -dataset terabyte -dataset-scale 0.005 -steps 2000
//	elrec-train -dataset kaggle -no-reorder -naive-tt   # TT-Rec ablation
//	elrec-train -dataset avazu -tt-threshold -1         # uncompressed DLRM
//
// Observability: every run keeps a metrics registry (pipeline ps_*, TT
// tt_* instruments). -debug-addr exposes it over HTTP while training:
//
//	elrec-train -steps 5000 -debug-addr localhost:6060 &
//	curl localhost:6060/metrics      # JSON snapshot of all instruments
//	curl localhost:6060/trace        # Chrome trace-event JSON (Perfetto)
//	go tool pprof localhost:6060/debug/pprof/profile
//
// -trace writes the pipeline stage spans (gather/train/apply on separate
// tracks) to a Chrome trace-event file on exit; open it in
// https://ui.perfetto.dev to see the stage overlap.
//
// Fault tolerance: training runs under a context cancelled by Ctrl-C
// (SIGINT/SIGTERM), so an interrupted run drains the pipeline gracefully and
// reports the next resumable iteration. With -checkpoint the full training
// state (model, optimizer state, host tables, iteration counter) is written
// atomically every -checkpoint-every steps and once more at the drain point;
// -resume restores it and continues bit-exactly:
//
//	elrec-train -steps 5000 -checkpoint run.ckpt -checkpoint-every 500
//	^C  (interrupt mid-run; state saved at the drain point)
//	elrec-train -steps 5000 -checkpoint run.ckpt -checkpoint-every 500 -resume run.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	elrec "repro"
	"repro/internal/obs"
	"repro/internal/tt"
)

func main() {
	// Exit via a return code so deferred cleanup (trace export, debug
	// endpoint shutdown) runs before the process ends.
	os.Exit(run())
}

func run() int {
	var (
		dataset      = flag.String("dataset", "terabyte", "dataset: avazu, kaggle or terabyte")
		datasetScale = flag.Float64("dataset-scale", 0.002, "dataset cardinality multiplier")
		steps        = flag.Int("steps", 1000, "training steps")
		batch        = flag.Int("batch", 512, "batch size")
		dim          = flag.Int("dim", 16, "embedding dimension")
		rank         = flag.Int("rank", 8, "TT rank")
		lr           = flag.Float64("lr", 1.0, "learning rate")
		ttThreshold  = flag.Int("tt-threshold", 10_000, "min rows for TT compression (-1 disables compression)")
		queueDepth   = flag.Int("queue", 4, "pre-fetch/gradient queue depth (1 = sequential)")
		lookahead    = flag.Int("lookahead", 0, "data-pipeline planning window in batches (0 or 1 disables oracle prefetching)")
		noReorder    = flag.Bool("no-reorder", false, "disable locality-based index reordering")
		adagrad      = flag.Bool("adagrad", false, "use Adagrad for embedding tables instead of SGD")
		naiveTT      = flag.Bool("naive-tt", false, "use the TT-Rec baseline table instead of Eff-TT")
		evalBatches  = flag.Int("eval", 10, "held-out evaluation batches")
		logEvery     = flag.Int("log-every", 100, "progress-line interval in steps")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /trace and pprof on this address while training")
		tracePath    = flag.String("trace", "", "write Chrome trace-event JSON of the pipeline stages to this path on exit")
		hbmGB        = flag.Float64("hbm-gb", -1, "override the device HBM capacity in GiB (<0: device default); small values force host placement and the pipelined trainer")
		savePath     = flag.String("save", "", "save the trained model (weights only) to this path")
		ckptPath     = flag.String("checkpoint", "", "write crash-consistent training checkpoints to this path")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint interval in steps (requires -checkpoint)")
		resumePath   = flag.String("resume", "", "resume training from a checkpoint written by -checkpoint")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := obs.NewLogger(os.Stderr, level, nil)

	spec, err := specFor(*dataset, *datasetScale)
	if err != nil {
		log.Error("invalid flags", "err", err)
		return 2
	}

	cfg := elrec.DefaultSystemConfig(spec)
	cfg.Model.EmbDim = *dim
	cfg.Model.LR = float32(*lr)
	cfg.Rank = *rank
	cfg.TTThreshold = *ttThreshold
	cfg.QueueDepth = *queueDepth
	cfg.Lookahead = *lookahead
	cfg.Reorder = !*noReorder && *ttThreshold >= 0
	cfg.Adagrad = *adagrad
	if *naiveTT {
		cfg.Opts = tt.NaiveOptions()
	}
	cfg.CheckpointPath = *ckptPath
	cfg.CheckpointEvery = *ckptEvery
	if *hbmGB >= 0 {
		cfg.Device.HBMBytes = int64(*hbmGB * float64(1<<30))
		cfg.HBMReserve = 0
	}

	// Every run carries the registry — the instruments are near-free and
	// feed both the progress line and the debug endpoint. The tracer is
	// only worth its ring buffer when something will read it.
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	var tracer *obs.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = obs.NewTracer(nil)
		cfg.Trace = tracer
	}

	sys, err := elrec.BuildSystem(cfg)
	if err != nil {
		log.Error("build failed", "err", err)
		return 1
	}

	if *debugAddr != "" {
		dbg, srvErr := obs.Serve(*debugAddr, reg, tracer)
		if srvErr != nil {
			log.Error("debug endpoint failed", "err", srvErr)
			return 1
		}
		defer dbg.Close()
		log.Info("debug endpoint up", "addr", dbg.Addr())
	}
	if *tracePath != "" {
		defer func() {
			if wErr := tracer.WriteChromeTraceFile(*tracePath); wErr != nil {
				log.Error("trace export failed", "err", wErr)
			} else {
				log.Info("trace written", "path", *tracePath, "spans", len(tracer.Spans()))
			}
		}()
	}

	log.Info("dataset", "name", spec.Name, "scale", *datasetScale,
		"tables", spec.NumTables(), "dense_features", spec.NumDense)
	for i, p := range sys.Placements {
		log.Debug("placement", "table", i, "rows", spec.TableRows[i], "where", p)
	}
	log.Info("embedding parameters",
		"device_mb", float64(sys.DeviceBytes)/1e6,
		"host_mb", float64(sys.HostBytes)/1e6,
		"compression", sys.CompressionRatio(),
		"pipelined", sys.Pipeline != nil)

	start := 0
	if *resumePath != "" {
		start, err = sys.ResumeFrom(*resumePath)
		if err != nil {
			log.Error("resume failed", "err", err)
			return 1
		}
		log.Info("resumed", "path", *resumePath, "iteration", start)
	}

	// Ctrl-C cancels the training context; the pipeline drains in-flight
	// batches and applies every queued gradient before returning, so the
	// reported resume iteration is always consistent with the tables.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("training", "steps", *steps-start, "batch", *batch)
	done := start
	for done < *steps {
		chunk := *logEvery
		if done+chunk > *steps {
			chunk = *steps - done
		}
		chunkStart := time.Now()
		res, trainErr := sys.TrainContext(ctx, done, chunk, *batch)
		done += res.Completed
		if res.Completed > 0 {
			kv := []any{
				"step", done,
				"loss", res.Curve.Final(res.Completed),
				"steps_per_sec", rate(res.Completed, time.Since(chunkStart)),
			}
			if sys.Pipeline != nil {
				kv = append(kv, "cache_hit_rate", cacheHitRate(reg))
			}
			log.Info("progress", kv...)
		}
		if trainErr != nil {
			if errors.Is(trainErr, context.Canceled) {
				log.Warn("interrupted", "iterations", done)
			} else {
				log.Error("training failed", "err", trainErr)
			}
			if res.Resumable && *ckptPath != "" {
				if err := sys.SaveCheckpoint(*ckptPath, res.NextIter); err != nil {
					log.Error("checkpoint at drain point failed", "err", err)
					return 1
				}
				log.Info("state saved", "path", *ckptPath, "resume_iteration", res.NextIter)
			} else if res.Resumable {
				log.Info("resumable (rerun with -checkpoint to persist state)", "resume_iteration", res.NextIter)
			}
			return 1
		}
	}

	acc, auc := sys.Evaluate(*steps+1, *evalBatches, *batch)
	log.Info("held-out eval", "accuracy", acc, "auc", auc, "batches", *evalBatches)
	if *savePath != "" {
		if sys.Pipeline != nil {
			log.Error("-save stores model weights only and requires a fully device-resident model; use -checkpoint for pipelined training state")
			return 1
		}
		if err := elrec.SaveModel(*savePath, sys.Model()); err != nil {
			log.Error("save failed", "err", err)
			return 1
		}
		log.Info("model saved", "path", *savePath)
	}
	if sys.Pipeline != nil {
		st := sys.Pipeline.Stats()
		log.Info("pipeline totals",
			"steps", st.Steps,
			"prefetched_mb", float64(st.BytesPrefetched)/1e6,
			"pushed_mb", float64(st.BytesPushed)/1e6,
			"cache_hit_rate", cacheHitRate(reg),
			"cache_evictions", st.CacheEvictions)
		if st.LookaheadWindows > 0 {
			log.Info("lookahead totals",
				"windows", st.LookaheadWindows,
				"pinned_rows", st.LookaheadPinnedRows,
				"prefetch_wait", st.PrefetchWait)
		}
		if st.Retries > 0 || st.Checkpoints > 0 {
			log.Info("pipeline faults",
				"retries", st.Retries, "backoff", st.BackoffTime, "checkpoints", st.Checkpoints)
		}
	}
	return 0
}

// rate converts a completed-step count and wall time into steps/second.
func rate(completed int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / elapsed.Seconds()
}

// cacheHitRate derives the cumulative LC-cache hit rate from the registry.
func cacheHitRate(reg *obs.Registry) float64 {
	snap := reg.Snapshot()
	hits, misses := snap.Counter("ps_cache_hits"), snap.Counter("ps_cache_misses")
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func specFor(name string, scale float64) (elrec.DatasetSpec, error) {
	switch name {
	case "avazu":
		return elrec.Avazu(scale), nil
	case "kaggle":
		return elrec.Kaggle(scale), nil
	case "terabyte":
		return elrec.Terabyte(scale), nil
	}
	return elrec.DatasetSpec{}, fmt.Errorf("unknown dataset %q (want avazu, kaggle or terabyte)", name)
}
