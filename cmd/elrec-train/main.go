// Command elrec-train trains a full EL-Rec system end to end on one of the
// synthetic datasets and reports the loss curve, held-out accuracy/AUC, and
// the placement/compression summary.
//
// Usage:
//
//	elrec-train -dataset terabyte -dataset-scale 0.005 -steps 2000
//	elrec-train -dataset kaggle -no-reorder -naive-tt   # TT-Rec ablation
//	elrec-train -dataset avazu -tt-threshold -1         # uncompressed DLRM
//
// Fault tolerance: training runs under a context cancelled by Ctrl-C
// (SIGINT/SIGTERM), so an interrupted run drains the pipeline gracefully and
// reports the next resumable iteration. With -checkpoint the full training
// state (model, optimizer state, host tables, iteration counter) is written
// atomically every -checkpoint-every steps and once more at the drain point;
// -resume restores it and continues bit-exactly:
//
//	elrec-train -steps 5000 -checkpoint run.ckpt -checkpoint-every 500
//	^C  (interrupt mid-run; state saved at the drain point)
//	elrec-train -steps 5000 -checkpoint run.ckpt -checkpoint-every 500 -resume run.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	elrec "repro"
	"repro/internal/tt"
)

func main() {
	var (
		dataset      = flag.String("dataset", "terabyte", "dataset: avazu, kaggle or terabyte")
		datasetScale = flag.Float64("dataset-scale", 0.002, "dataset cardinality multiplier")
		steps        = flag.Int("steps", 1000, "training steps")
		batch        = flag.Int("batch", 512, "batch size")
		dim          = flag.Int("dim", 16, "embedding dimension")
		rank         = flag.Int("rank", 8, "TT rank")
		lr           = flag.Float64("lr", 1.0, "learning rate")
		ttThreshold  = flag.Int("tt-threshold", 10_000, "min rows for TT compression (-1 disables compression)")
		queueDepth   = flag.Int("queue", 4, "pre-fetch/gradient queue depth (1 = sequential)")
		noReorder    = flag.Bool("no-reorder", false, "disable locality-based index reordering")
		adagrad      = flag.Bool("adagrad", false, "use Adagrad for embedding tables instead of SGD")
		naiveTT      = flag.Bool("naive-tt", false, "use the TT-Rec baseline table instead of Eff-TT")
		evalBatches  = flag.Int("eval", 10, "held-out evaluation batches")
		logEvery     = flag.Int("log-every", 100, "loss print interval")
		savePath     = flag.String("save", "", "save the trained model (weights only) to this path")
		ckptPath     = flag.String("checkpoint", "", "write crash-consistent training checkpoints to this path")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint interval in steps (requires -checkpoint)")
		resumePath   = flag.String("resume", "", "resume training from a checkpoint written by -checkpoint")
	)
	flag.Parse()

	spec, err := specFor(*dataset, *datasetScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := elrec.DefaultSystemConfig(spec)
	cfg.Model.EmbDim = *dim
	cfg.Model.LR = float32(*lr)
	cfg.Rank = *rank
	cfg.TTThreshold = *ttThreshold
	cfg.QueueDepth = *queueDepth
	cfg.Reorder = !*noReorder && *ttThreshold >= 0
	cfg.Adagrad = *adagrad
	if *naiveTT {
		cfg.Opts = tt.NaiveOptions()
	}
	cfg.CheckpointPath = *ckptPath
	cfg.CheckpointEvery = *ckptEvery

	sys, err := elrec.BuildSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("dataset %s (scale %g): %d tables, %d dense features\n",
		spec.Name, *datasetScale, spec.NumTables(), spec.NumDense)
	for i, p := range sys.Placements {
		fmt.Printf("  table %2d: %9d rows -> %s\n", i, spec.TableRows[i], p)
	}
	fmt.Printf("embedding parameters: %.2f MB on device, %.2f MB on host (compression %.1fx)\n",
		float64(sys.DeviceBytes)/1e6, float64(sys.HostBytes)/1e6, sys.CompressionRatio())

	start := 0
	if *resumePath != "" {
		start, err = sys.ResumeFrom(*resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *resumePath, start)
	}

	// Ctrl-C cancels the training context; the pipeline drains in-flight
	// batches and applies every queued gradient before returning, so the
	// reported resume iteration is always consistent with the tables.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("\ntraining %d steps, batch %d:\n", *steps-start, *batch)
	done := start
	for done < *steps {
		chunk := *logEvery
		if done+chunk > *steps {
			chunk = *steps - done
		}
		res, trainErr := sys.TrainContext(ctx, done, chunk, *batch)
		done += res.Completed
		if res.Completed > 0 {
			fmt.Printf("  iter %5d  loss %.4f\n", done, res.Curve.Final(res.Completed))
		}
		if trainErr != nil {
			if errors.Is(trainErr, context.Canceled) {
				fmt.Fprintf(os.Stderr, "interrupted after %d iterations\n", done)
			} else {
				fmt.Fprintln(os.Stderr, trainErr)
			}
			if res.Resumable && *ckptPath != "" {
				if err := sys.SaveCheckpoint(*ckptPath, res.NextIter); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "state saved; resume with -resume %s\n", *ckptPath)
			} else if res.Resumable {
				fmt.Fprintf(os.Stderr, "resumable from iteration %d (rerun with -checkpoint to persist state)\n", res.NextIter)
			}
			os.Exit(1)
		}
	}

	acc, auc := sys.Evaluate(*steps+1, *evalBatches, *batch)
	fmt.Printf("\nheld-out accuracy %.2f%%, AUC %.4f over %d batches\n", acc*100, auc, *evalBatches)
	if *savePath != "" {
		if sys.Pipeline != nil {
			fmt.Fprintln(os.Stderr, "-save stores model weights only and requires a fully device-resident model; use -checkpoint for pipelined training state")
			os.Exit(1)
		}
		if err := elrec.SaveModel(*savePath, sys.Model()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
	if sys.Pipeline != nil {
		st := sys.Pipeline.Stats()
		fmt.Printf("pipeline: %d steps, %.2f MB prefetched, %.2f MB gradients pushed, %d cache hits, %d evictions\n",
			st.Steps, float64(st.BytesPrefetched)/1e6, float64(st.BytesPushed)/1e6, st.CacheHits, st.CacheEvictions)
		if st.Retries > 0 || st.Checkpoints > 0 {
			fmt.Printf("pipeline: %d retries (%s backoff), %d checkpoints written\n",
				st.Retries, st.BackoffTime, st.Checkpoints)
		}
	}
}

func specFor(name string, scale float64) (elrec.DatasetSpec, error) {
	switch name {
	case "avazu":
		return elrec.Avazu(scale), nil
	case "kaggle":
		return elrec.Kaggle(scale), nil
	case "terabyte":
		return elrec.Terabyte(scale), nil
	}
	return elrec.DatasetSpec{}, fmt.Errorf("unknown dataset %q (want avazu, kaggle or terabyte)", name)
}
