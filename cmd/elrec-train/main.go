// Command elrec-train trains a full EL-Rec system end to end on one of the
// synthetic datasets and reports the loss curve, held-out accuracy/AUC, and
// the placement/compression summary.
//
// Usage:
//
//	elrec-train -dataset terabyte -dataset-scale 0.005 -steps 2000
//	elrec-train -dataset kaggle -no-reorder -naive-tt   # TT-Rec ablation
//	elrec-train -dataset avazu -tt-threshold -1         # uncompressed DLRM
package main

import (
	"flag"
	"fmt"
	"os"

	elrec "repro"
	"repro/internal/tt"
)

func main() {
	var (
		dataset      = flag.String("dataset", "terabyte", "dataset: avazu, kaggle or terabyte")
		datasetScale = flag.Float64("dataset-scale", 0.002, "dataset cardinality multiplier")
		steps        = flag.Int("steps", 1000, "training steps")
		batch        = flag.Int("batch", 512, "batch size")
		dim          = flag.Int("dim", 16, "embedding dimension")
		rank         = flag.Int("rank", 8, "TT rank")
		lr           = flag.Float64("lr", 1.0, "learning rate")
		ttThreshold  = flag.Int("tt-threshold", 10_000, "min rows for TT compression (-1 disables compression)")
		queueDepth   = flag.Int("queue", 4, "pre-fetch/gradient queue depth (1 = sequential)")
		noReorder    = flag.Bool("no-reorder", false, "disable locality-based index reordering")
		adagrad      = flag.Bool("adagrad", false, "use Adagrad for embedding tables instead of SGD")
		naiveTT      = flag.Bool("naive-tt", false, "use the TT-Rec baseline table instead of Eff-TT")
		evalBatches  = flag.Int("eval", 10, "held-out evaluation batches")
		logEvery     = flag.Int("log-every", 100, "loss print interval")
		savePath     = flag.String("save", "", "checkpoint the trained model to this path")
	)
	flag.Parse()

	spec, err := specFor(*dataset, *datasetScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := elrec.DefaultSystemConfig(spec)
	cfg.Model.EmbDim = *dim
	cfg.Model.LR = float32(*lr)
	cfg.Rank = *rank
	cfg.TTThreshold = *ttThreshold
	cfg.QueueDepth = *queueDepth
	cfg.Reorder = !*noReorder && *ttThreshold >= 0
	cfg.Adagrad = *adagrad
	if *naiveTT {
		cfg.Opts = tt.NaiveOptions()
	}

	sys, err := elrec.BuildSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("dataset %s (scale %g): %d tables, %d dense features\n",
		spec.Name, *datasetScale, spec.NumTables(), spec.NumDense)
	for i, p := range sys.Placements {
		fmt.Printf("  table %2d: %9d rows -> %s\n", i, spec.TableRows[i], p)
	}
	fmt.Printf("embedding parameters: %.2f MB on device, %.2f MB on host (compression %.1fx)\n",
		float64(sys.DeviceBytes)/1e6, float64(sys.HostBytes)/1e6, sys.CompressionRatio())

	fmt.Printf("\ntraining %d steps, batch %d:\n", *steps, *batch)
	done := 0
	for done < *steps {
		chunk := *logEvery
		if done+chunk > *steps {
			chunk = *steps - done
		}
		curve := sys.Train(done, chunk, *batch)
		done += chunk
		fmt.Printf("  iter %5d  loss %.4f\n", done, curve.Final(chunk))
	}

	acc, auc := sys.Evaluate(*steps+1, *evalBatches, *batch)
	fmt.Printf("\nheld-out accuracy %.2f%%, AUC %.4f over %d batches\n", acc*100, auc, *evalBatches)
	if *savePath != "" {
		if sys.Pipeline != nil {
			fmt.Fprintln(os.Stderr, "checkpointing requires a fully device-resident model (host tables live in the parameter server)")
			os.Exit(1)
		}
		if err := elrec.SaveModel(*savePath, sys.Model()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}
	if sys.Pipeline != nil {
		st := sys.Pipeline.Stats()
		fmt.Printf("pipeline: %d steps, %.2f MB prefetched, %.2f MB gradients pushed, %d cache hits, %d evictions\n",
			st.Steps, float64(st.BytesPrefetched)/1e6, float64(st.BytesPushed)/1e6, st.CacheHits, st.CacheEvictions)
	}
}

func specFor(name string, scale float64) (elrec.DatasetSpec, error) {
	switch name {
	case "avazu":
		return elrec.Avazu(scale), nil
	case "kaggle":
		return elrec.Kaggle(scale), nil
	case "terabyte":
		return elrec.Terabyte(scale), nil
	}
	return elrec.DatasetSpec{}, fmt.Errorf("unknown dataset %q (want avazu, kaggle or terabyte)", name)
}
