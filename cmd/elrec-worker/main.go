// Command elrec-worker runs the trainer side of a distributed EL-Rec
// cluster: the DLRM towers and TT-compressed tables train locally while the
// sharded overflow tables live on elrec-ps shards, reached through the
// batched gather/push pipeline. The worker acquires the trainer lease from
// shard 0, checkpoints the cluster coordinately every -checkpoint-every
// steps, and rides out shard failures by rolling everyone back to the last
// committed version.
//
// Start it with the SAME dataset and model flags as every elrec-ps shard;
// the shared scenario is what makes a distributed run bit-identical to the
// single-process reference:
//
//	elrec-worker -id 1 -shards localhost:7070,localhost:7071 \
//	    -steps 200 -checkpoint /tmp/worker.ckpt -checkpoint-every 50
//
// Pass -reference to skip the cluster entirely and train the identical
// scenario in-process — the oracle a distributed run's final_hash is
// compared against. On exit the worker prints machine-greppable results:
//
//	final_hash=<16 hex digits> final_loss=<float> completed=<n> recoveries=<n>
//
// A second worker started with a different -id is a hot standby: it parks
// on the lease and takes over (fencing the old epoch, restoring the shared
// checkpoint) if the active trainer dies. SIGINT/SIGTERM drains the
// in-flight batch and exits resumably.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/data"
	"repro/internal/distps"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/tensor"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.Uint64("id", 1, "worker id (nonzero; distinct per worker)")
		shardCSV = flag.String("shards", "localhost:7070", "comma-separated PS shard addresses, in shard-id order")
		refMode  = flag.Bool("reference", false, "train single-process (no cluster) and print the reference hash")

		dataset      = flag.String("dataset", "kaggle", "dataset preset: avazu, kaggle or terabyte")
		datasetScale = flag.Float64("dataset-scale", 0.001, "dataset cardinality multiplier")
		dim          = flag.Int("dim", 16, "embedding dimension")
		rank         = flag.Int("rank", 8, "TT rank (device tables)")
		lr           = flag.Float64("lr", 0.5, "learning rate")
		ttThreshold  = flag.Int("tt-threshold", 10_000, "min rows for device TT compression; smaller tables live on the PS")
		queueDepth   = flag.Int("queue", 4, "pipeline pre-fetch queue depth")

		steps = flag.Int("steps", 200, "total training iterations")
		batch = flag.Int("batch", 64, "batch size")

		ckptPath  = flag.String("checkpoint", "", "worker checkpoint file (enables coordinated checkpoints)")
		ckptEvery = flag.Int("checkpoint-every", 0, "coordinated checkpoint interval in steps (0 disables)")

		leaseTTL   = flag.Duration("lease-ttl", 3*time.Second, "trainer lease duration")
		rpcTimeout = flag.Duration("rpc-timeout", 5*time.Second, "per-RPC deadline")
		hbEvery    = flag.Duration("heartbeat-every", time.Second, "shard liveness probe period (0 disables)")
		debugAddr  = flag.String("debug-addr", "", "debug endpoint address (/metrics, /trace, /cluster, /cluster/trace, /healthz, /readyz, pprof); empty disables")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := obs.NewLogger(os.Stderr, level, nil)

	sc, err := distps.NewScenario(*dataset, *datasetScale, *dim, *rank, *ttThreshold, *lr, *queueDepth)
	if err != nil {
		log.Error("invalid scenario flags", "err", err)
		return 2
	}
	src, err := data.New(sc.Spec)
	if err != nil {
		log.Error("dataset build failed", "err", err)
		return 1
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(nil)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *refMode {
		// No cluster to aggregate in reference mode: a plain debug endpoint.
		if *debugAddr != "" {
			dbg, derr := obs.Serve(*debugAddr, reg, tracer)
			if derr != nil {
				log.Error("debug endpoint failed", "err", derr)
				return 1
			}
			log.Info("debug endpoint up", "addr", dbg.Addr())
			defer dbg.Shutdown(time.Second)
		}
		return runReference(ctx, sc, src, *steps, *batch, reg, tracer, log)
	}
	return runDistributed(ctx, sc, src, workerFlags{
		id: *id, shards: splitAddrs(*shardCSV), steps: *steps, batch: *batch,
		ckptPath: *ckptPath, ckptEvery: *ckptEvery,
		leaseTTL: *leaseTTL, rpcTimeout: *rpcTimeout, hbEvery: *hbEvery,
		debugAddr: *debugAddr,
	}, reg, tracer, log)
}

type workerFlags struct {
	id           uint64
	shards       []string
	steps, batch int
	ckptPath     string
	ckptEvery    int
	leaseTTL     time.Duration
	rpcTimeout   time.Duration
	hbEvery      time.Duration
	debugAddr    string
}

func splitAddrs(csv string) []string {
	var out []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runReference trains the identical scenario in one process — the oracle.
func runReference(ctx context.Context, sc distps.Scenario, src *data.Dataset,
	steps, batch int, reg *obs.Registry, tracer *obs.Tracer, log *obs.Logger) int {
	locs, err := sc.ReferenceLocs()
	if err != nil {
		log.Error("reference placement failed", "err", err)
		return 1
	}
	cfg := sc.PipelineConfig()
	cfg.Metrics = reg
	cfg.Trace = tracer
	p, err := ps.NewPipeline(cfg, locs)
	if err != nil {
		log.Error("reference pipeline failed", "err", err)
		return 1
	}
	start := time.Now()
	res, err := p.Train(ctx, src, 0, steps, batch)
	if err != nil {
		log.Error("reference training failed", "err", err)
		return 1
	}
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h := range specs {
		values[h] = p.HostBag(h).Weights
	}
	hash, err := distps.HashState(p, specs, values)
	if err != nil {
		log.Error("state hash failed", "err", err)
		return 1
	}
	log.Info("reference run done", "steps", res.Completed,
		"elapsed", time.Since(start).Round(time.Millisecond))
	printResult(hash, res.Curve.Losses, res.Completed, 0)
	return 0
}

// runDistributed trains against the shard cluster via the recovery loop.
// The debug endpoint starts after the worker exists: the /cluster and
// /cluster/trace routes aggregate over the worker's shard client.
func runDistributed(ctx context.Context, sc distps.Scenario, src *data.Dataset,
	f workerFlags, reg *obs.Registry, tracer *obs.Tracer, log *obs.Logger) int {
	w, err := distps.NewWorker(distps.WorkerConfig{
		ID: f.id, Shards: f.shards, Scenario: sc,
		CheckpointPath: f.ckptPath, CheckpointEvery: f.ckptEvery,
		LeaseTTL: f.leaseTTL, HeartbeatEvery: f.hbEvery, RPCTimeout: f.rpcTimeout,
		Metrics: reg, Trace: tracer, Log: log,
	})
	if err != nil {
		log.Error("worker build failed", "err", err)
		return 1
	}
	defer w.Close()
	if f.debugAddr != "" {
		dbg, derr := obs.ServeWith(f.debugAddr, reg, tracer,
			distps.ClusterHandlers(w, reg, tracer, f.rpcTimeout))
		if derr != nil {
			log.Error("debug endpoint failed", "err", derr)
			return 1
		}
		log.Info("debug endpoint up", "addr", dbg.Addr())
		defer dbg.Shutdown(time.Second)
	}
	start := time.Now()
	res, err := w.Run(ctx, src, f.steps, f.batch)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// SIGINT/SIGTERM: the in-flight batch drained and (with
			// -checkpoint) the last coordinated version is on disk —
			// restarting the worker resumes bit-exactly.
			log.Info("interrupted; state is resumable", "next_iter", res.NextIter,
				"completed", res.Completed, "recoveries", res.Recoveries)
			return 0
		}
		log.Error("distributed training failed", "err", err,
			"completed", res.Completed, "recoveries", res.Recoveries)
		return 1
	}
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h, spec := range specs {
		m, gerr := distps.GatherFullTable(w.Client().Store(context.Background(), spec), spec)
		if gerr != nil {
			log.Error("final gather failed", "table", spec.Index, "err", gerr)
			return 1
		}
		values[h] = m
	}
	hash, err := distps.HashState(w.Pipeline(), specs, values)
	if err != nil {
		log.Error("state hash failed", "err", err)
		return 1
	}
	log.Info("distributed run done", "steps", res.Completed, "recoveries", res.Recoveries,
		"elapsed", time.Since(start).Round(time.Millisecond))
	var losses []float64
	if res.Curve != nil {
		losses = res.Curve.Losses
	}
	printResult(hash, losses, res.Completed, res.Recoveries)
	return 0
}

// printResult emits the machine-greppable result line the CI smoke test
// compares across runs.
func printResult(hash uint64, losses []float64, completed, recoveries int) {
	loss := "n/a"
	if len(losses) > 0 {
		loss = fmt.Sprintf("%.9g", losses[len(losses)-1])
	}
	fmt.Printf("final_hash=%016x final_loss=%s completed=%d recoveries=%d\n",
		hash, loss, completed, recoveries)
}
