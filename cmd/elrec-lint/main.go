// Command elrec-lint is the project's static-analysis multichecker: it
// loads the packages matching the given go-list patterns and applies the
// ten invariant analyzers (nopanic, determinism, locksafe, gospawn,
// errcmp, obsclock, hotalloc, lockorder, ctxflow, wireexhaustive) from
// internal/analysis. Diagnostics print one per line as
// file:line:col: message [analyzer]; the exit status is 1 when any
// diagnostic is reported, 2 on a load or internal failure.
//
// Usage:
//
//	elrec-lint [-only name[,name...]] [-list] [-json] [-baseline file] [packages]
//
// With no packages, ./... is assumed. -only restricts the run to a subset
// of analyzers; -list prints the suite and exits. -json emits the findings
// as a JSON array (file/line/col/analyzer/message) instead of text, for CI
// artifacts and tooling. -baseline suppresses findings recorded in the
// given baseline file (same JSON schema; positions are ignored when
// matching so unrelated edits don't resurrect suppressed findings);
// -write-baseline rewrites that file from the current findings and exits 0.
// A timing line (load/analyze wall clock) always goes to stderr so CI logs
// track the suite's cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
)

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// key identifies a finding for baseline matching: analyzer + file + message,
// deliberately excluding the position so that edits elsewhere in the file do
// not resurrect a suppressed finding.
func (f finding) key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: elrec-lint [-only name,...] [-list] [-json] [-baseline file [-write-baseline]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "elrec-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "elrec-lint: -write-baseline requires -baseline")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadStart := time.Now()
	pkgs, err := analysis.NewLoader().Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elrec-lint:", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)
	runStart := time.Now()
	diags, err := analysis.RunAnalyzers(pkgs, suite, analysis.Applies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elrec-lint:", err)
		os.Exit(2)
	}
	runTime := time.Since(runStart)
	fmt.Fprintf(os.Stderr, "elrec-lint: timing: loaded %d packages in %v, ran %d analyzers in %v\n",
		len(pkgs), loadTime.Round(time.Millisecond), len(suite), runTime.Round(time.Millisecond))

	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	if *writeBaseline {
		if err := writeBaselineFile(*baselinePath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "elrec-lint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "elrec-lint: wrote %d finding(s) to %s\n", len(findings), *baselinePath)
		return
	}
	if *baselinePath != "" {
		suppressed, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elrec-lint:", err)
			os.Exit(2)
		}
		kept := findings[:0]
		for _, f := range findings {
			if !suppressed[f.key()] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "elrec-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "elrec-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// loadBaseline reads a baseline file into a suppression set.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var fs []finding
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	out := make(map[string]bool, len(fs))
	for _, f := range fs {
		out[f.key()] = true
	}
	return out, nil
}

// writeBaselineFile writes the findings as an indented JSON array.
func writeBaselineFile(path string, fs []finding) error {
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
