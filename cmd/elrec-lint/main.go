// Command elrec-lint is the project's static-analysis multichecker: it
// loads the packages matching the given go-list patterns and applies the
// six invariant analyzers (nopanic, determinism, locksafe, gospawn,
// errcmp, obsclock) from internal/analysis. Diagnostics print one per line as
// file:line:col: message [analyzer]; the exit status is 1 when any
// diagnostic is reported, 2 on a load or internal failure.
//
// Usage:
//
//	elrec-lint [-only name[,name...]] [-list] [packages]
//
// With no packages, ./... is assumed. -only restricts the run to a subset
// of analyzers; -list prints the suite and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: elrec-lint [-only name,...] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "elrec-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elrec-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite, analysis.Applies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elrec-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "elrec-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
