// Command elrec-ps runs one parameter-server shard of a distributed EL-Rec
// training cluster. The overflow embedding tables (those too small for TT
// compression) are partitioned across -shards shards by a consistent-hash
// ring; each shard owns its rows exclusively, checkpoints them durably in
// -dir, and fences stale trainers by lease epoch.
//
// Every participant — each shard and each worker — must be started with the
// same dataset and model flags: the scenario derived from them defines the
// table universe, the seeds, and therefore the bit-exact initial state.
// Shard 0 doubles as the trainer-lease authority.
//
// Usage (a two-shard cluster):
//
//	elrec-ps -id 0 -shards 2 -addr localhost:7070 -dir /tmp/shard0
//	elrec-ps -id 1 -shards 2 -addr localhost:7071 -dir /tmp/shard1
//
// SIGINT/SIGTERM drains gracefully: in-flight requests finish (bounded by
// -drain-timeout), then the listener closes. Durable state — versioned
// checkpoints and the fencing-epoch file — survives any exit, including
// SIGKILL: a restarted shard rejoins unrestored and waits for the trainer
// to roll it back to the last coordinated checkpoint.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/distps"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id     = flag.Int("id", 0, "this shard's index in [0, shards)")
		shards = flag.Int("shards", 1, "total number of PS shards")
		addr   = flag.String("addr", "localhost:7070", "listen address (use :0 for an ephemeral port)")
		dir    = flag.String("dir", "", "durable state directory (checkpoints + fencing epoch); required")

		dataset      = flag.String("dataset", "kaggle", "dataset preset: avazu, kaggle or terabyte")
		datasetScale = flag.Float64("dataset-scale", 0.001, "dataset cardinality multiplier")
		dim          = flag.Int("dim", 16, "embedding dimension")
		rank         = flag.Int("rank", 8, "TT rank (device tables)")
		lr           = flag.Float64("lr", 0.5, "learning rate (scenario parity with workers)")
		ttThreshold  = flag.Int("tt-threshold", 10_000, "min rows for device TT compression; smaller tables shard here")
		queueDepth   = flag.Int("queue", 4, "worker pipeline queue depth (scenario parity)")

		leaseTTL     = flag.Duration("lease-ttl", 3*time.Second, "default trainer-lease duration")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "max wait for in-flight requests on shutdown")
		debugAddr    = flag.String("debug-addr", "", "debug endpoint address (/metrics, /trace, /healthz, /readyz, pprof); empty disables")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	log := obs.NewLogger(os.Stderr, level, nil)
	if *dir == "" {
		log.Error("missing -dir: a shard needs a durable state directory")
		return 2
	}

	sc, err := distps.NewScenario(*dataset, *datasetScale, *dim, *rank, *ttThreshold, *lr, *queueDepth)
	if err != nil {
		log.Error("invalid scenario flags", "err", err)
		return 2
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(nil)
	// Shard span ids live in a per-shard id space so a merged cluster trace
	// never collides them with the worker's (base 0) or another shard's.
	tracer.SetSpanIDBase(uint64(*id+1) << 48)
	cfg := sc.ShardConfig(*id, *shards, *dir)
	cfg.LeaseTTL = *leaseTTL
	cfg.DrainTimeout = *drainTimeout
	cfg.Metrics = reg
	cfg.Trace = tracer
	cfg.Log = log
	shard, err := distps.NewShard(cfg)
	if err != nil {
		log.Error("shard boot failed", "err", err)
		return 1
	}

	var dbg *obs.DebugServer
	if *debugAddr != "" {
		dbg, err = obs.ServeWith(*debugAddr, reg, tracer, distps.ShardHandlers(shard))
		if err != nil {
			log.Error("debug endpoint failed", "err", err)
			return 1
		}
		log.Info("debug endpoint up", "addr", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	errc := make(chan error, 1)
	go func() { errc <- shard.Serve(ln) }()
	log.Info("shard serving", "id", *id, "shards", *shards, "addr", ln.Addr().String(),
		"tables", len(sc.HostSpecs()), "version", shard.Version(), "restored", shard.Restored())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Info("draining", "signal", s.String())
	case err := <-errc:
		log.Error("shard serve failed", "err", err)
		_ = shard.Close()
		_ = dbg.Shutdown(time.Second)
		return 1
	}
	if err := shard.Close(); err != nil {
		log.Warn("drain incomplete", "err", err)
	}
	_ = dbg.Shutdown(time.Second)
	log.Info("shard stopped", "id", *id, "version", shard.Version())
	return 0
}
