// Reorder: builds the locality-based index bijection of §IV for one
// embedding table — frequency ordering (global information) plus Louvain
// communities over the co-occurrence graph (local information) — and shows
// how it increases TT-prefix sharing, the quantity that drives the Eff-TT
// reuse buffer.
package main

import (
	"fmt"
	"log"

	elrec "repro"
)

func main() {
	// A single-table dataset with hidden co-occurrence structure scattered
	// across the id space (user sessions drifting over time).
	spec := elrec.DatasetSpec{
		Name: "reorder-demo", NumDense: 1, TableRows: []int{8192},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 32, ActiveGroups: 6, Locality: 0.85,
		Samples: 1 << 20, Seed: 7,
	}
	d, err := elrec.NewDataset(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Offline profiling: access counts (global) + batched indices (local).
	const profileBatches, batch = 40, 512
	counts := make([]int64, spec.TableRows[0])
	var batches [][]int
	for it := 0; it < profileBatches; it++ {
		col := d.Batch(it, batch).Sparse[0]
		batches = append(batches, col)
		for _, idx := range col {
			counts[idx]++
		}
	}

	bij, err := elrec.BuildReordering(counts, batches, elrec.DefaultReorderConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := bij.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a bijection over %d rows (hot ratio %.0f%%)\n",
		bij.Len(), elrec.DefaultReorderConfig().HotRatio*100)

	// Effect on held-out batches: unique TT prefixes per batch (idx / m3)
	// drop, so the Eff-TT reuse buffer gets more hits.
	const m3 = 32
	uniquePrefixes := func(indices []int) int {
		seen := map[int]struct{}{}
		for _, idx := range indices {
			seen[idx/m3] = struct{}{}
		}
		return len(seen)
	}
	var before, after int
	for it := profileBatches; it < profileBatches+20; it++ {
		raw := d.Batch(it, batch).Sparse[0]
		before += uniquePrefixes(raw)
		after += uniquePrefixes(bij.Apply(raw))
	}
	fmt.Printf("unique TT prefixes over 20 held-out batches: %d -> %d (%.1f%% fewer)\n",
		before, after, 100*(1-float64(after)/float64(before)))
	fmt.Println("fewer distinct prefixes = more intermediate-result reuse in the Eff-TT forward pass")
}
