// Train-and-serve: continuous retraining with hot checkpoint reload — the
// read-after-write hazard at the serving boundary, solved the same way
// EL-Rec versions parameter access at the training boundary. A trainer
// goroutine keeps optimizing its own model and periodically publishes a
// version: checkpoint to disk, then SwapFromCheckpoint on the live pool.
// The pool rebuilds every replica from the checkpoint bytes, so trainer and
// servers never share mutable memory, and the swap hands replicas over at
// micro-batch boundaries, so not one request is dropped. Client goroutines
// hammer the pool throughout and verify every response is bit-identical to
// some published version — a torn read mixing two versions, or a stale
// replica still serving a retired version, would fail the membership check.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	elrec "repro"
	"repro/internal/data"
	"repro/internal/dlrm"
	"repro/internal/tt"
)

const (
	itemFeature = 1  // table 1 carries the candidate item id
	scoreBatch  = 32 // rows per forward pass
	versions    = 4  // published model versions (1 initial + 3 reloads)
	stepsPer    = 30 // training steps between published versions
	clients     = 4  // concurrent scoring goroutines
	contexts    = 6  // distinct request contexts the clients cycle through
)

func spec() data.Spec {
	return data.Spec{
		Name: "trainserve", NumDense: 4, TableRows: []int{500, 4000},
		ZipfS: 1.2, ZipfV: 2, GroupSize: 16, ActiveGroups: 4, Locality: 0.8,
		Samples: 1 << 20, Seed: 17,
	}
}

// factory builds the serving architecture skeleton: table 1 (4000 rows) is
// TT-compressed, table 0 stays dense. Every checkpoint load materializes
// into a fresh instance of this, never into the trainer's memory.
func factory() (*dlrm.Model, error) {
	tables, _, err := dlrm.BuildTables(spec().TableRows,
		dlrm.TableSpec{Dim: 8, Rank: 4, TTThreshold: 1000, Opts: tt.EffOptions(), Seed: 11})
	if err != nil {
		return nil, err
	}
	return dlrm.NewModel(dlrm.Config{
		NumDense: 4, EmbDim: 8, BottomSizes: []int{8}, TopSizes: []int{8}, LR: 1.0, Seed: 12,
	}, tables)
}

func requestContext(i int) elrec.RankContext {
	return elrec.RankContext{
		Dense:  []float32{0.3 * float32(i), -1, 0.5, float32(i % 3)},
		Sparse: []int{(i * 29) % 500, 0},
	}
}

func candidates(i int) []int {
	out := make([]int, 16)
	for j := range out {
		out[j] = (i*37 + j*131) % 4000
	}
	return out
}

// publish checkpoints the trainer model and computes the serial reference
// scores for every client context by reloading the checkpoint into a fresh
// skeleton — the same bytes the pool will serve after the swap.
func publish(dir string, version int, m *dlrm.Model) (string, [][]float32, error) {
	path := filepath.Join(dir, fmt.Sprintf("v%d.ckpt", version))
	if err := elrec.SaveModel(path, m); err != nil {
		return "", nil, err
	}
	frozen, err := factory()
	if err != nil {
		return "", nil, err
	}
	if err := elrec.LoadModel(path, frozen); err != nil {
		return "", nil, err
	}
	ranker, err := elrec.NewRanker(frozen, itemFeature, scoreBatch)
	if err != nil {
		return "", nil, err
	}
	refs := make([][]float32, contexts)
	for i := range refs {
		if refs[i], err = ranker.Score(requestContext(i), candidates(i)); err != nil {
			return "", nil, err
		}
	}
	return path, refs, nil
}

func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() {
	dir, err := os.MkdirTemp("", "trainserve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	trainer, err := factory()
	if err != nil {
		log.Fatal(err)
	}
	d, err := data.New(spec())
	if err != nil {
		log.Fatal(err)
	}
	step := 0
	train := func(n int) float32 {
		var loss float32
		for i := 0; i < n; i++ {
			loss = trainer.TrainStep(d.Batch(step, 64))
			step++
		}
		return loss
	}

	// Version 1: train, checkpoint, bring the pool up from the bytes.
	loss := train(stepsPer)
	path, refs, err := publish(dir, 1, trainer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v1 published (loss %.4f)\n", loss)

	// published guards the version reference table; clients read it on
	// every response, the trainer appends on every publish.
	var mu sync.Mutex
	published := [][][]float32{refs}

	reg := elrec.NewMetricsRegistry()
	pool, err := elrec.NewServingPoolFromCheckpoint(path, itemFeature, scoreBatch, elrec.ServingOptions{
		Replicas: 3, QueueDepth: 128, MaxCoalesce: 4, Metrics: reg, Factory: factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// Clients hammer the pool for the whole run; every response must match
	// one published version bit-exactly.
	stop := make(chan struct{})
	var scored, mismatches atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx := i % contexts
				scores, err := pool.Score(requestContext(ctx), candidates(ctx))
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
				mu.Lock()
				ok := false
				for _, refs := range published {
					if bitEqual(scores, refs[ctx]) {
						ok = true
						break
					}
				}
				mu.Unlock()
				if !ok {
					mismatches.Add(1)
				}
				scored.Add(1)
			}
		}(c)
	}

	// The trainer keeps going, publishing a new version every stepsPer
	// steps and hot-swapping it in under the live traffic above.
	for v := 2; v <= versions; v++ {
		loss = train(stepsPer)
		var refs [][]float32
		path, refs, err = publish(dir, v, trainer)
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		published = append(published, refs)
		mu.Unlock()
		got, err := pool.SwapFromCheckpoint(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("v%d published and swapped in (loss %.4f, pool version %d)\n", v, loss, got)
	}
	close(stop)
	wg.Wait()

	if n := mismatches.Load(); n != 0 {
		log.Fatalf("%d responses matched no published version", n)
	}

	// The served scores must now track the final checkpoint bit-exactly: a
	// cold pool built from the same file agrees on every context.
	cold, err := elrec.NewServingPoolFromCheckpoint(path, itemFeature, scoreBatch, elrec.ServingOptions{
		Replicas: 1, Factory: factory,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cold.Close()
	for i := 0; i < contexts; i++ {
		hot, err := pool.Score(requestContext(i), candidates(i))
		if err != nil {
			log.Fatal(err)
		}
		want, err := cold.Score(requestContext(i), candidates(i))
		if err != nil {
			log.Fatal(err)
		}
		if !bitEqual(hot, want) {
			log.Fatalf("context %d: hot pool diverges from cold pool on checkpoint v%d", i, versions)
		}
	}

	snap := reg.Snapshot()
	fmt.Printf("served %d requests across %d versions, zero drops, zero stale reads\n",
		scored.Load(), versions)
	fmt.Printf("model_version %.0f, swaps %d, swap p50 %.2fms\n",
		snap.Gauges["model_version"],
		snap.Histograms["serve_swap_ns"].Count,
		snap.Histograms["serve_swap_ns"].P50/1e6)
}
