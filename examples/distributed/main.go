// Distributed: the full parameter-server cluster in one process — two PS
// shards on loopback TCP holding the consistent-hash-sharded overflow
// tables, and a trainer worker driving them through the batched
// gather/push pipeline with coordinated checkpoints. Halfway through, one
// shard is killed and restarted from its durable state; the worker's
// recovery loop fences a new lease epoch, rolls the cluster back to the
// last committed checkpoint, and resumes. The punchline is the EL-Rec
// fault-tolerance contract: the recovered run's final parameters are
// bit-identical to a single-process run that never saw a failure.
//
// The same protocol runs across real machines via the elrec-ps and
// elrec-worker binaries; see the README quickstart.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"repro/internal/data"
	"repro/internal/distps"
	"repro/internal/ps"
	"repro/internal/tensor"
)

const (
	steps = 200
	batch = 64
	every = 50 // coordinated checkpoint interval
)

func main() {
	sc, err := distps.NewScenario("kaggle", 0.0005, 8, 4, 2000, 0.5, 4)
	if err != nil {
		log.Fatal(err)
	}
	src, err := data.New(sc.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d tables, %d sharded to the parameter server, %d TT-compressed on device\n",
		len(sc.Spec.TableRows), len(sc.HostSpecs()),
		len(sc.Spec.TableRows)-len(sc.HostSpecs()))

	// Boot a two-shard cluster on loopback; each shard's checkpoints and
	// fencing epoch live in its own durable directory.
	work, err := os.MkdirTemp("", "elrec-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	dirs := []string{filepath.Join(work, "shard0"), filepath.Join(work, "shard1")}
	shards := make([]*distps.Shard, 2)
	addrs := make([]string, 2)
	for i := range shards {
		shards[i], addrs[i] = boot(sc, i, dirs[i], "127.0.0.1:0")
	}
	fmt.Printf("shards up: %v\n", addrs)

	// The worker: coordinated checkpoints every 50 steps, and a hook that
	// SIGKILLs (well, Close()s) shard 1 right after the version-100
	// checkpoint commits — the most awkward moment, with the cluster ahead
	// of the worker's local state file.
	killed := false
	w, err := distps.NewWorker(distps.WorkerConfig{
		ID: 1, Shards: addrs, Scenario: sc,
		CheckpointPath:  filepath.Join(work, "worker.ckpt"),
		CheckpointEvery: every,
		AfterCheckpoint: func(v int64) {
			if v != 2*every || killed {
				return
			}
			killed = true
			fmt.Printf("version %d committed — killing shard 1 and restarting it from %s\n", v, dirs[1])
			shards[1].Close()
			shards[1], _ = boot(sc, 1, dirs[1], addrs[1])
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	res, err := w.Run(context.Background(), src, steps, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed run done: %d iterations trained (%d net), %d recovery\n",
		res.Completed, steps, res.Recoveries)
	distHash := hashWorker(sc, w) // gather the final rows back before the shards go away
	for _, s := range shards {
		s.Close()
	}

	// The oracle: the identical scenario, host tables in local memory.
	locs, err := sc.ReferenceLocs()
	if err != nil {
		log.Fatal(err)
	}
	ref, err := ps.NewPipeline(sc.PipelineConfig(), locs)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ref.Train(context.Background(), src, 0, steps, batch); err != nil {
		log.Fatal(err)
	}

	refHash := hashReference(sc, ref)
	fmt.Printf("distributed final state: %016x\n", distHash)
	fmt.Printf("reference final state:   %016x\n", refHash)
	if distHash != refHash {
		log.Fatal("recovered run diverged from the single-process reference")
	}
	fmt.Println("bit-identical: the kill, the rollback and the replay left no trace")
}

func boot(sc distps.Scenario, id int, dir, addr string) (*distps.Shard, string) {
	s, err := distps.NewShard(sc.ShardConfig(id, 2, dir))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go s.Serve(ln)
	return s, ln.Addr().String()
}

func hashWorker(sc distps.Scenario, w *distps.Worker) uint64 {
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h, spec := range specs {
		m, err := distps.GatherFullTable(w.Client().Store(context.Background(), spec), spec)
		if err != nil {
			log.Fatal(err)
		}
		values[h] = m
	}
	hash, err := distps.HashState(w.Pipeline(), specs, values)
	if err != nil {
		log.Fatal(err)
	}
	return hash
}

func hashReference(sc distps.Scenario, p *ps.Pipeline) uint64 {
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h := range specs {
		values[h] = p.HostBag(h).Weights
	}
	hash, err := distps.HashState(p, specs, values)
	if err != nil {
		log.Fatal(err)
	}
	return hash
}
