// Distributed: the full parameter-server cluster in one process — two PS
// shards on loopback TCP holding the consistent-hash-sharded overflow
// tables, and a trainer worker driving them through the batched
// gather/push pipeline with coordinated checkpoints. Halfway through, one
// shard is killed and restarted from its durable state; the worker's
// recovery loop fences a new lease epoch, rolls the cluster back to the
// last committed checkpoint, and resumes. The punchline is the EL-Rec
// fault-tolerance contract: the recovered run's final parameters are
// bit-identical to a single-process run that never saw a failure.
//
// The same protocol runs across real machines via the elrec-ps and
// elrec-worker binaries; see the README quickstart.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"repro/internal/data"
	"repro/internal/distps"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/tensor"
)

const (
	steps = 200
	batch = 64
	every = 50 // coordinated checkpoint interval
)

func main() {
	sc, err := distps.NewScenario("kaggle", 0.0005, 8, 4, 2000, 0.5, 4)
	if err != nil {
		log.Fatal(err)
	}
	src, err := data.New(sc.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d tables, %d sharded to the parameter server, %d TT-compressed on device\n",
		len(sc.Spec.TableRows), len(sc.HostSpecs()),
		len(sc.Spec.TableRows)-len(sc.HostSpecs()))

	// Boot a two-shard cluster on loopback; each shard's checkpoints and
	// fencing epoch live in its own durable directory.
	work, err := os.MkdirTemp("", "elrec-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	dirs := []string{filepath.Join(work, "shard0"), filepath.Join(work, "shard1")}
	shards := make([]*distps.Shard, 2)
	addrs := make([]string, 2)
	for i := range shards {
		shards[i], addrs[i] = boot(sc, i, dirs[i], "127.0.0.1:0")
	}
	fmt.Printf("shards up: %v\n", addrs)

	// The worker: coordinated checkpoints every 50 steps, and a hook that
	// SIGKILLs (well, Close()s) shard 1 right after the version-100
	// checkpoint commits — the most awkward moment, with the cluster ahead
	// of the worker's local state file.
	killed := false
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(nil) // span-id base 0: the worker's id space
	w, err := distps.NewWorker(distps.WorkerConfig{
		ID: 1, Shards: addrs, Scenario: sc,
		Metrics: reg, Trace: tracer,
		CheckpointPath:  filepath.Join(work, "worker.ckpt"),
		CheckpointEvery: every,
		AfterCheckpoint: func(v int64) {
			if v != 2*every || killed {
				return
			}
			killed = true
			fmt.Printf("version %d committed — killing shard 1 and restarting it from %s\n", v, dirs[1])
			shards[1].Close()
			shards[1], _ = boot(sc, 1, dirs[1], addrs[1])
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	res, err := w.Run(context.Background(), src, steps, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed run done: %d iterations trained (%d net), %d recovery\n",
		res.Completed, steps, res.Recoveries)
	distHash := hashWorker(sc, w) // gather the final rows back before the shards go away

	// Pull every shard's spans over the msgStats RPC and write one merged
	// Chrome trace — worker pid 1, shards pids 2 and 3, shard timelines
	// offset-corrected onto the worker's clock — then verify the
	// cross-process links survived the wire.
	tracePath := filepath.Join(os.TempDir(), "elrec-cluster-trace.json")
	tf, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := distps.WriteClusterTrace(context.Background(), tf, w.Client(), tracer,
		tracer.Epoch().UnixNano()); err != nil {
		log.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		log.Fatal(err)
	}
	verifyClusterTrace(tracePath)
	fmt.Printf("cluster trace: %s (open in ui.perfetto.dev)\n", tracePath)

	for _, s := range shards {
		s.Close()
	}

	// The oracle: the identical scenario, host tables in local memory.
	locs, err := sc.ReferenceLocs()
	if err != nil {
		log.Fatal(err)
	}
	ref, err := ps.NewPipeline(sc.PipelineConfig(), locs)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ref.Train(context.Background(), src, 0, steps, batch); err != nil {
		log.Fatal(err)
	}

	refHash := hashReference(sc, ref)
	fmt.Printf("distributed final state: %016x\n", distHash)
	fmt.Printf("reference final state:   %016x\n", refHash)
	if distHash != refHash {
		log.Fatal("recovered run diverged from the single-process reference")
	}
	fmt.Println("bit-identical: the kill, the rollback and the replay left no trace")
}

func boot(sc distps.Scenario, id int, dir, addr string) (*distps.Shard, string) {
	cfg := sc.ShardConfig(id, 2, dir)
	cfg.Metrics = obs.NewRegistry()
	// Disjoint per-shard span-id bases keep parent links unambiguous when
	// the worker merges all three processes' spans into one trace.
	cfg.Trace = obs.NewTracer(nil)
	cfg.Trace.SetSpanIDBase(uint64(id+1) << 48)
	s, err := distps.NewShard(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go s.Serve(ln)
	return s, ln.Addr().String()
}

func hashWorker(sc distps.Scenario, w *distps.Worker) uint64 {
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h, spec := range specs {
		m, err := distps.GatherFullTable(w.Client().Store(context.Background(), spec), spec)
		if err != nil {
			log.Fatal(err)
		}
		values[h] = m
	}
	hash, err := distps.HashState(w.Pipeline(), specs, values)
	if err != nil {
		log.Fatal(err)
	}
	return hash
}

func hashReference(sc distps.Scenario, p *ps.Pipeline) uint64 {
	specs := sc.HostSpecs()
	values := make([]*tensor.Matrix, len(specs))
	for h := range specs {
		values[h] = p.HostBag(h).Weights
	}
	hash, err := distps.HashState(p, specs, values)
	if err != nil {
		log.Fatal(err)
	}
	return hash
}

// traceEvent mirrors the Chrome trace-event fields the verification needs.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	ID   uint64         `json:"id"`
	Args map[string]any `json:"args"`
}

// verifyClusterTrace asserts the tentpole contract on the merged trace: a
// worker-side gather span and a shard-side handle:gather span share a
// trace id, the handler's parent is the gather span, and a flow event pair
// (ph s/f) draws the arrow between them.
func verifyClusterTrace(path string) {
	b, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		log.Fatalf("cluster trace is not valid JSON: %v", err)
	}
	// Worker-side gather spans, keyed by span id, with their trace id.
	gatherTrace := map[string]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == 1 && ev.Name == "gather" {
			span, _ := ev.Args["span"].(string)
			trace, _ := ev.Args["trace"].(string)
			gatherTrace[span] = trace
		}
	}
	linked := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.PID == 1 || ev.Name != "handle:gather" {
			continue
		}
		parent, _ := ev.Args["parent"].(string)
		trace, _ := ev.Args["trace"].(string)
		if want, ok := gatherTrace[parent]; ok && want == trace {
			linked = true
			break
		}
	}
	if !linked {
		log.Fatal("no shard-side handle:gather span links under a worker-side gather span")
	}
	flowStarts := map[uint64]bool{}
	flowPaired := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "s" {
			flowStarts[ev.ID] = true
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "f" && flowStarts[ev.ID] {
			flowPaired = true
			break
		}
	}
	if !flowPaired {
		log.Fatal("no paired flow events (ph s/f) in the merged trace")
	}
	fmt.Println("trace verified: worker gather and shard handle:gather share a trace id and a flow arrow")
}
