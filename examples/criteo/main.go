// Criteo end-to-end: trains a full EL-Rec system on the Criteo-Terabyte-like
// synthetic dataset — TT compression of the large tables, locality-based
// index reordering, HBM-aware placement — and compares its held-out quality
// against the uncompressed DLRM baseline (Table IV in miniature).
package main

import (
	"fmt"
	"log"

	elrec "repro"
)

func main() {
	const (
		scale = 0.001
		steps = 600
		batch = 256
	)
	spec := elrec.Terabyte(scale)
	fmt.Printf("terabyte-like dataset at scale %g: %d categorical tables, largest %d rows\n",
		scale, spec.NumTables(), maxOf(spec.TableRows))

	train := func(name string, compress bool) {
		cfg := elrec.DefaultSystemConfig(spec)
		cfg.Model.EmbDim = 16
		cfg.Rank = 8
		if !compress {
			cfg.TTThreshold = -1 // uncompressed DLRM baseline
			cfg.Reorder = false
		}
		sys, err := elrec.BuildSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		curve := sys.Train(0, steps, batch)
		acc, auc := sys.Evaluate(steps+1, 10, batch)
		fmt.Printf("%-8s emb %7.2f MB  final loss %.4f  held-out acc %.2f%%  AUC %.4f\n",
			name,
			float64(sys.DeviceBytes+sys.HostBytes)/1e6,
			curve.Final(50), acc*100, auc)
	}
	train("DLRM", false)
	train("EL-Rec", true)
	fmt.Println("EL-Rec matches the uncompressed model's quality at a fraction of the memory.")
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
