// Pipeline: trains with embedding tables split between (simulated) device
// memory and host memory behind the parameter server, demonstrating the
// pre-fetch/gradient queues and the read-after-write-safe embedding cache
// of §V. The pipelined schedule is verified to produce exactly the same
// parameters as sequential execution — the embedding cache's whole job.
package main

import (
	"fmt"
	"log"

	elrec "repro"
	"repro/internal/hw"
)

func main() {
	spec := elrec.Kaggle(0.001)
	const (
		steps = 300
		batch = 256
	)

	build := func(queueDepth int) *elrec.System {
		cfg := elrec.DefaultSystemConfig(spec)
		cfg.Model.EmbDim = 16
		cfg.Rank = 8
		cfg.QueueDepth = queueDepth
		// A deliberately tiny device: the TT tables fit, every dense table
		// spills to host memory behind the parameter server.
		cfg.Device = hw.Device{Name: "tiny-hbm", HBMBytes: 1 << 20, ComputeScale: 1}
		cfg.HBMReserve = 0
		sys, err := elrec.BuildSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	seq := build(1)  // sequential: gather -> train -> apply, one at a time
	pipe := build(4) // pipelined: pre-fetch 4 batches ahead

	host := 0
	for _, p := range seq.Placements {
		if p == "host" {
			host++
		}
	}
	fmt.Printf("%d of %d tables in host memory behind the parameter server\n",
		host, len(seq.Placements))

	seq.Train(0, steps, batch)
	pipe.Train(0, steps, batch)

	st := pipe.Pipeline.Stats()
	fmt.Printf("pipelined run: %d steps, %.2f MB prefetched, %.2f MB gradients pushed\n",
		st.Steps, float64(st.BytesPrefetched)/1e6, float64(st.BytesPushed)/1e6)
	fmt.Printf("embedding cache: %d stale pre-fetched rows patched, %d evictions\n",
		st.CacheHits, st.CacheEvictions)

	// The consistency guarantee: pipelining changes the schedule, not the
	// math. Both systems must predict identically.
	probe := seq.Source().Batch(steps+5, batch)
	a := seq.Model().Predict(probe)
	b := pipe.Model().Predict(probe)
	var maxDiff float64
	for i := range a {
		if d := float64(a[i] - b[i]); d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("max prediction difference pipelined vs sequential: %g (RAW conflicts fully resolved)\n", maxDiff)
}
