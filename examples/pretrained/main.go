// Pretrained: initializes a TT table from an already-trained dense
// embedding table via truncated TT-SVD (the TT-Rec initialization path),
// shows how reconstruction error falls with rank, and checkpoints the
// compressed model to disk.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	elrec "repro"
)

func main() {
	const (
		rows = 4096
		dim  = 16
	)

	// Stand-in for a pretrained table with tensor-train structure (trained
	// embedding tables compress well precisely when such structure exists):
	// materialize a rank-4 TT table and add a little noise.
	dense := elrec.NewEmbeddingBag(rows, dim, 7)
	weights := dense.Weights
	src, err := elrec.NewEffTTEmbeddingBag(rows, dim, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	structured := src.Materialize()
	for i := range weights.Data {
		weights.Data[i] = structured.Data[i] + 0.002*weights.Data[i]
	}

	fmt.Printf("dense table %d x %d = %.2f MB\n", rows, dim, float64(dense.FootprintBytes())/1e6)
	fmt.Println("TT-SVD decomposition at increasing rank:")
	for _, rank := range []int{2, 4, 8, 16} {
		tbl, err := elrec.DecomposeTable(rows, dim, rank, weights.Data)
		if err != nil {
			log.Fatal(err)
		}
		diff := tbl.Materialize()
		var num, den float64
		for i, v := range diff.Data {
			d := float64(v - weights.Data[i])
			num += d * d
			den += float64(weights.Data[i]) * float64(weights.Data[i])
		}
		relErr := num / den
		fmt.Printf("  rank %2d: %7.3f KB (%5.0fx smaller), relative error %.4f\n",
			rank, float64(tbl.FootprintBytes())/1e3,
			float64(dense.FootprintBytes())/float64(tbl.FootprintBytes()), relErr)
	}

	// Wrap the rank-16 decomposition in a model and checkpoint it.
	tbl, err := elrec.DecomposeTable(rows, dim, 16, weights.Data)
	if err != nil {
		log.Fatal(err)
	}
	model, err := elrec.NewDLRM(elrec.ModelConfig{
		NumDense: 4, EmbDim: dim, BottomSizes: []int{16}, TopSizes: []int{16}, LR: 0.5, Seed: 1,
	}, []elrec.EmbeddingBag{tbl})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "elrec-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	if err := elrec.SaveModel(path, model); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("checkpointed compressed model: %.1f KB at %s\n", float64(info.Size())/1e3, path)

	restored, err := elrec.NewDLRM(elrec.ModelConfig{
		NumDense: 4, EmbDim: dim, BottomSizes: []int{16}, TopSizes: []int{16}, LR: 0.5, Seed: 99,
	}, []elrec.EmbeddingBag{mustTT(rows, dim)})
	if err != nil {
		log.Fatal(err)
	}
	if err := elrec.LoadModel(path, restored); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored checkpoint into a fresh model: TT cores round-tripped")
}

func mustTT(rows, dim int) elrec.EmbeddingBag {
	t, err := elrec.NewEffTTEmbeddingBag(rows, dim, 16, 123)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
