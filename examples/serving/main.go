// Serving: ranks candidate items for a user context with a trained,
// TT-compressed model — the inference-side payoff of compression: the whole
// ranking model fits in a few hundred kilobytes per serving replica.
package main

import (
	"fmt"
	"log"

	elrec "repro"
)

func main() {
	// Train a small model on the Avazu-like dataset.
	spec := elrec.Avazu(0.002)
	cfg := elrec.DefaultSystemConfig(spec)
	cfg.Model.EmbDim = 16
	cfg.Rank = 8
	sys, err := elrec.BuildSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training…")
	sys.Train(0, 400, 256)
	acc, auc := sys.Evaluate(401, 5, 256)
	fmt.Printf("model ready: %.2f%% accuracy, AUC %.3f, %.2f MB of embeddings\n",
		acc*100, auc, float64(sys.DeviceBytes+sys.HostBytes)/1e6)

	// The largest table acts as the item catalogue.
	itemFeature, itemRows := 0, 0
	for t, rows := range spec.TableRows {
		if rows > itemRows {
			itemFeature, itemRows = t, rows
		}
	}
	ranker, err := elrec.NewRanker(sys.Model(), itemFeature, 256)
	if err != nil {
		log.Fatal(err)
	}

	// A user context from the dataset, and a candidate pool.
	b := sys.Source().Batch(500, 1)
	ctx := elrec.RankContext{Dense: b.Dense.Row(0)}
	for t := range b.Sparse {
		ctx.Sparse = append(ctx.Sparse, b.Sparse[t][0])
	}
	candidates := make([]int, 500)
	for i := range candidates {
		candidates[i] = (i * 37) % itemRows
	}

	top, err := ranker.TopK(ctx, candidates, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 of %d candidates from item table %d (%d rows):\n",
		len(candidates), itemFeature, itemRows)
	for rank, s := range top {
		fmt.Printf("  #%d item %5d  ctr %.4f\n", rank+1, s.Item, s.Score)
	}
}
