// Quickstart: the Eff-TT embedding bag as a drop-in replacement for an
// uncompressed EmbeddingBag. Builds both over the same 1M-row table shape,
// compares footprints, and runs the same lookups and updates through each.
package main

import (
	"fmt"
	"log"

	elrec "repro"
)

func main() {
	const (
		rows = 1_000_000
		dim  = 32
		rank = 16
	)

	// The uncompressed reference table and its TT-compressed drop-in.
	dense := elrec.NewEmbeddingBag(rows, dim, 1)
	eff, err := elrec.NewEffTTEmbeddingBag(rows, dim, rank, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense table:  %8.2f MB\n", float64(dense.FootprintBytes())/1e6)
	fmt.Printf("Eff-TT table: %8.2f MB (%.0fx compression, rank %d)\n",
		float64(eff.FootprintBytes())/1e6,
		float64(dense.FootprintBytes())/float64(eff.FootprintBytes()), rank)

	// One batch of three samples; sample 0 has two indices (a multi-hot
	// bag), samples 1 and 2 one each — the torch.nn.EmbeddingBag encoding.
	indices := []int{12, 999_999, 42, 42}
	offsets := []int{0, 2, 3}

	// Both tables implement the same interface: sum-pooling Lookup and a
	// combined backward+SGD Update.
	for name, table := range map[string]elrec.EmbeddingBag{"dense": dense, "eff-tt": eff} {
		out := table.Lookup(indices, offsets)
		fmt.Printf("%-7s lookup -> %dx%d embeddings, sample0[0..4] = %.3v\n",
			name, out.Rows, out.Cols, out.Row(0)[:4])

		// Gradient of some loss w.r.t. the pooled output; Update applies
		// the sparse SGD step directly.
		grad := out.Clone()
		for i := range grad.Data {
			grad.Data[i] = 1 // pretend dLoss/dOut is all ones
		}
		table.Update(indices, offsets, grad, 0.01)
	}

	// The same batch again: rows moved against the gradient (each pooled
	// output entry drops by lr x occurrences).
	out := eff.Lookup(indices, offsets)
	fmt.Printf("after update, eff-tt sample0[0..4] = %.3v\n", out.Row(0)[:4])
}
